#ifndef TDP_EXEC_SPILL_KERNELS_H_
#define TDP_EXEC_SPILL_KERNELS_H_

#include <cmath>
#include <cstdint>
#include <cstring>
#include <memory>
#include <string>
#include <unordered_map>
#include <vector>

#include "src/common/statusor.h"
#include "src/exec/operator_kernels.h"
#include "src/exec/operators.h"
#include "src/plan/logical_plan.h"

namespace tdp {
namespace exec {

// Spill-to-disk (out-of-budget) variants of the three breaker kernels.
// Each produces BIT-IDENTICAL results to its in-memory sibling — the spill
// paths re-derive the exact same row permutations, group orderings, and
// floating-point reduction trees; only where the scratch lives changes.
// `ExecuteSort` / `BuildJoinHashTable` / `FinalizeAggregate` dispatch here
// when `ExecContext::memory` reports the in-memory footprint over budget.

// ---- Order-preserving key codes ---------------------------------------------
//
// The comparator currency of every spill path: each key value maps to an
// int64 whose signed order (and equality) matches the engine's value
// semantics exactly —
//   * integer-kind values (int64/int32/uint8/bool, dictionary codes) map
//     to themselves: order and equality are trivially preserved;
//   * float-kind values map through their double magnitude with the sign
//     folded in (-0 normalized to +0, every NaN to one canonical code that
//     sorts above +inf) — matching ArgSort's NaN-last comparator and
//     Unique's SameValue equivalence (-0 == +0, all NaNs equal).
// Crucially the mapping is ROW-LOCAL, so codes computed per spill page are
// globally consistent — unlike `ColumnToCodes`' Unique ranks, which are
// only meaningful relative to the whole column.

/// Canonical NaN code: above every finite/inf code (NaN sorts last
/// ascending); `CompareKeyCodes` pins NaN last under descending too.
constexpr int64_t kNanOrderCode = 0x7ff8000000000000LL;

inline int64_t DoubleOrderCode(double d) {
  if (std::isnan(d)) return kNanOrderCode;
  if (d == 0.0) return 0;  // -0 and +0 share a code
  uint64_t bits;
  std::memcpy(&bits, &d, sizeof(bits));
  const int64_t magnitude = static_cast<int64_t>(bits & 0x7fffffffffffffffULL);
  return (bits >> 63) != 0 ? -magnitude : magnitude;
}

/// Per-row order codes for one column (see above). `is_float` reports
/// whether the NaN-last rule applies to this key.
StatusOr<std::vector<int64_t>> OrderPreservingCodes(const Column& column,
                                                    bool* is_float);

/// Three-way comparison of two codes of one sort key: <0, 0, >0. NaN
/// orders last under BOTH directions (ArgSort's comparator contract).
inline int CompareKeyCodes(int64_t a, int64_t b, bool descending,
                           bool is_float) {
  if (a == b) return 0;
  if (is_float) {
    const bool a_nan = a == kNanOrderCode;
    const bool b_nan = b == kNanOrderCode;
    if (a_nan != b_nan) return a_nan ? 1 : -1;
  }
  if (descending) return a < b ? 1 : -1;
  return a < b ? -1 : 1;
}

// ---- External merge sort ----------------------------------------------------

/// Out-of-budget ORDER BY: splits the input into row-order runs sized to
/// the budget, stable-sorts each run and spills it (sorted key codes +
/// exact column pages), then k-way merges the runs — ties broken by run
/// order, i.e. by original row index, reproducing the exact permutation of
/// the in-memory composition of stable sorts. Output columns are assembled
/// one at a time by scattering spilled pages into place, so peak scratch
/// is one output column + one page instead of keys+permutation+copy of the
/// whole relation. Honors `fused_limit` by truncating the merge.
StatusOr<Chunk> ExternalSortChunk(const plan::SortNode& node,
                                  const Chunk& input, const ExecContext& ctx);

// ---- Grace hash join (spilled build payload) --------------------------------

/// Out-of-budget join build: the build payload is hash-partitioned by key
/// into per-partition spill files; the key -> local-row map of each
/// partition stays resident (keys and indices are the cheap part — the
/// wide payload columns are what spills). A key lands in exactly one
/// partition and partitions preserve build-row order, so probe emission
/// (probe-row-major, ascending build row per probe row) is reproduced
/// exactly by per-partition gathers.
struct SpilledJoinBuild {
  int64_t num_partitions = 0;
  int64_t build_rows = 0;
  /// 0-row zero-copy view of the build input: schema, encodings, and
  /// shared dictionary/domain metadata for assembling probe outputs.
  Chunk prototype;
  std::vector<std::string> files;      // one payload file per partition
  std::vector<int64_t> partition_rows;
  /// Per partition: normalized key -> partition-local build rows,
  /// ascending (local order == global build-row order by construction).
  std::vector<
      std::unordered_map<std::vector<int64_t>, std::vector<int64_t>,
                         RowKeyHash>>
      rows;
};

StatusOr<std::shared_ptr<SpilledJoinBuild>> BuildSpilledJoin(
    const plan::JoinNode& node, const Chunk& build_input,
    const ExecContext& ctx);

/// Probe one morsel against a spilled build: partitions are loaded one at
/// a time and their matched rows scattered into the emission-order output.
StatusOr<Chunk> ProbeSpilledJoin(const plan::JoinNode& node,
                                 const SpilledJoinBuild& build,
                                 const Chunk& probe, const ExecContext& ctx);

// ---- Paged two-pass aggregation ---------------------------------------------

/// Out-of-budget GROUP BY: spills the evaluated key/argument columns in
/// 4096-row pages (aligned with the in-memory kernel's accumulation
/// blocks), discovers groups in a first streaming pass (order codes give
/// globally consistent group identity and order), then re-streams the
/// pages accumulating each aggregate — folding block partials in block
/// order exactly when the in-memory kernel would have parallelized, and
/// sequentially otherwise — so the floating-point reduction tree is
/// reproduced operation for operation. Never materializes the whole-
/// relation code/argument/group arrays.
StatusOr<Chunk> SpilledFinalizeAggregate(const plan::AggregateNode& node,
                                         const AggInputs& inputs,
                                         const ExecContext& ctx);

}  // namespace exec
}  // namespace tdp

#endif  // TDP_EXEC_SPILL_KERNELS_H_
