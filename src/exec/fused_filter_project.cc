#include "src/exec/fused_filter_project.h"

#include <atomic>
#include <cstring>
#include <utility>

#include "src/common/thread_pool.h"
#include "src/tensor/ops.h"

namespace tdp {
namespace exec {
namespace {

std::atomic<bool> g_fused_enabled{true};

using CmpOp = FusedFilterProject::CmpOp;
using ArithOp = FusedFilterProject::ArithOp;

// The evaluation below mirrors the unfused chain element for element.
// Unfused, `col <cmp> lit` runs as: ScalarToTensor(lit) -> To(compute) on
// both operands (compute = PromoteTypes) -> BinaryEval, where the kAccel
// backend compares in compute dtype and the kCpu reference backend routes
// every element through double. The fused loops apply the identical casts
// inline — `static_cast<ComputeT>(col[i])` replaces the To() copy, the
// literal is pre-converted through the same ScalarToTensor chain — so the
// resulting booleans/values are bit-identical on both backends.

/// `lit <cmp> col` rewritten as `col <cmp'> lit`. Comparison mirroring is
/// exact under IEEE semantics (including NaN operands): x < y iff y > x.
/// This is also precisely the normalization CompareStringLiteral applies
/// to string predicates with the literal on the left.
CmpOp MirrorCmp(CmpOp op) {
  switch (op) {
    case CmpOp::kLt:
      return CmpOp::kGt;
    case CmpOp::kLe:
      return CmpOp::kGe;
    case CmpOp::kGt:
      return CmpOp::kLt;
    case CmpOp::kGe:
      return CmpOp::kLe;
    default:
      return op;  // Eq/Ne are symmetric
  }
}

/// One conjunct after per-morsel resolution: a typed compare of a
/// contiguous column array against a constant already converted to the
/// promoted compute dtype.
struct ResolvedCmp {
  const void* data = nullptr;
  DType col_dtype = DType::kInt64;
  DType compute = DType::kInt64;  // kInt64 / kFloat32 / kFloat64
  CmpOp op = CmpOp::kEq;          // normalized: column on the left
  int64_t lit_i = 0;
  float lit_f = 0;
  double lit_d = 0;
};

struct ResolvedProj {
  bool passthrough = false;
  int64_t col = 0;  // passthrough source
  const void* data = nullptr;
  DType col_dtype = DType::kInt64;
  DType compute = DType::kInt64;
  ArithOp op = ArithOp::kAdd;
  bool lit_on_left = false;  // order matters for Sub
  int64_t lit_i = 0;
  float lit_f = 0;
  double lit_d = 0;
};

template <typename ComputeT>
ComputeT LitAs(const ResolvedCmp& c);
template <>
int64_t LitAs<int64_t>(const ResolvedCmp& c) { return c.lit_i; }
template <>
float LitAs<float>(const ResolvedCmp& c) { return c.lit_f; }
template <>
double LitAs<double>(const ResolvedCmp& c) { return c.lit_d; }

template <typename ComputeT>
ComputeT ProjLitAs(const ResolvedProj& p);
template <>
int64_t ProjLitAs<int64_t>(const ResolvedProj& p) { return p.lit_i; }
template <>
float ProjLitAs<float>(const ResolvedProj& p) { return p.lit_f; }
template <>
double ProjLitAs<double>(const ResolvedProj& p) { return p.lit_d; }

/// Applies one compare over rows [lo, hi): the first conjunct writes the
/// mask, later conjuncts AND into it (the unfused path materializes each
/// compare and LogicalAnds them — same booleans, one pass, no tensors).
template <typename ColT, typename ComputeT>
void CmpRange(const ColT* col, ComputeT lit, CmpOp op, bool ref_math,
              bool first, int64_t lo, int64_t hi, unsigned char* keep) {
  auto apply = [&](auto f) {
    if (first) {
      for (int64_t i = lo; i < hi; ++i) {
        keep[i] = static_cast<unsigned char>(f(i));
      }
    } else {
      for (int64_t i = lo; i < hi; ++i) {
        keep[i] &= static_cast<unsigned char>(f(i));
      }
    }
  };
  auto run = [&](auto cmp) {
    if (ref_math) {
      // Reference backend: both operands pass through double, exactly as
      // the interpretive ReferenceLoop computes them.
      const double litd = static_cast<double>(lit);
      apply([col, litd, cmp](int64_t i) {
        return cmp(static_cast<double>(static_cast<ComputeT>(col[i])), litd);
      });
    } else {
      apply([col, lit, cmp](int64_t i) {
        return cmp(static_cast<ComputeT>(col[i]), lit);
      });
    }
  };
  switch (op) {
    case CmpOp::kEq:
      run([](auto a, auto b) { return a == b; });
      break;
    case CmpOp::kNe:
      run([](auto a, auto b) { return a != b; });
      break;
    case CmpOp::kLt:
      run([](auto a, auto b) { return a < b; });
      break;
    case CmpOp::kLe:
      run([](auto a, auto b) { return a <= b; });
      break;
    case CmpOp::kGt:
      run([](auto a, auto b) { return a > b; });
      break;
    case CmpOp::kGe:
      run([](auto a, auto b) { return a >= b; });
      break;
  }
}

template <typename ColT>
void CmpRangeCompute(const ResolvedCmp& c, bool ref_math, bool first,
                     int64_t lo, int64_t hi, unsigned char* keep) {
  const ColT* col = static_cast<const ColT*>(c.data);
  switch (c.compute) {
    case DType::kInt64:
      CmpRange<ColT, int64_t>(col, LitAs<int64_t>(c), c.op, ref_math, first,
                              lo, hi, keep);
      break;
    case DType::kFloat32:
      CmpRange<ColT, float>(col, LitAs<float>(c), c.op, ref_math, first, lo,
                            hi, keep);
      break;
    default:
      CmpRange<ColT, double>(col, LitAs<double>(c), c.op, ref_math, first,
                             lo, hi, keep);
      break;
  }
}

void CmpRangeDyn(const ResolvedCmp& c, bool ref_math, bool first, int64_t lo,
                 int64_t hi, unsigned char* keep) {
  switch (c.col_dtype) {
    case DType::kInt32:
      CmpRangeCompute<int32_t>(c, ref_math, first, lo, hi, keep);
      break;
    case DType::kInt64:
      CmpRangeCompute<int64_t>(c, ref_math, first, lo, hi, keep);
      break;
    case DType::kFloat32:
      CmpRangeCompute<float>(c, ref_math, first, lo, hi, keep);
      break;
    default:
      CmpRangeCompute<double>(c, ref_math, first, lo, hi, keep);
      break;
  }
}

/// Gather + arith for one projection over the selected rows: out[j] =
/// col[idx[j]] <op> lit in the promoted dtype (kAccel), or through the
/// reference backend's double chain (kCpu). Matches the unfused
/// Select-then-Add/Sub/Mul composition bit for bit: gathering commutes
/// with the per-element casts and ops.
template <typename ColT, typename ComputeT>
void ProjRange(const ColT* col, const int64_t* idx, ComputeT lit, ArithOp op,
               bool lit_left, bool ref_math, int64_t lo, int64_t hi,
               ComputeT* out) {
  auto run = [&](auto f) {
    if (ref_math) {
      const double litd = static_cast<double>(lit);
      if (lit_left) {
        for (int64_t j = lo; j < hi; ++j) {
          out[j] = static_cast<ComputeT>(f(
              litd, static_cast<double>(static_cast<ComputeT>(col[idx[j]]))));
        }
      } else {
        for (int64_t j = lo; j < hi; ++j) {
          out[j] = static_cast<ComputeT>(f(
              static_cast<double>(static_cast<ComputeT>(col[idx[j]])), litd));
        }
      }
    } else {
      if (lit_left) {
        for (int64_t j = lo; j < hi; ++j) {
          out[j] = f(lit, static_cast<ComputeT>(col[idx[j]]));
        }
      } else {
        for (int64_t j = lo; j < hi; ++j) {
          out[j] = f(static_cast<ComputeT>(col[idx[j]]), lit);
        }
      }
    }
  };
  switch (op) {
    case ArithOp::kAdd:
      run([](auto a, auto b) { return a + b; });
      break;
    case ArithOp::kSub:
      run([](auto a, auto b) { return a - b; });
      break;
    case ArithOp::kMul:
      run([](auto a, auto b) { return a * b; });
      break;
  }
}

template <typename ColT>
void ProjRangeCompute(const ResolvedProj& p, const int64_t* idx,
                      bool ref_math, int64_t lo, int64_t hi, void* out) {
  const ColT* col = static_cast<const ColT*>(p.data);
  switch (p.compute) {
    case DType::kInt64:
      ProjRange<ColT, int64_t>(col, idx, ProjLitAs<int64_t>(p), p.op,
                               p.lit_on_left, ref_math, lo, hi,
                               static_cast<int64_t*>(out));
      break;
    case DType::kFloat32:
      ProjRange<ColT, float>(col, idx, ProjLitAs<float>(p), p.op,
                             p.lit_on_left, ref_math, lo, hi,
                             static_cast<float*>(out));
      break;
    default:
      ProjRange<ColT, double>(col, idx, ProjLitAs<double>(p), p.op,
                              p.lit_on_left, ref_math, lo, hi,
                              static_cast<double*>(out));
      break;
  }
}

void ProjRangeDyn(const ResolvedProj& p, const int64_t* idx, bool ref_math,
                  int64_t lo, int64_t hi, void* out) {
  switch (p.col_dtype) {
    case DType::kInt32:
      ProjRangeCompute<int32_t>(p, idx, ref_math, lo, hi, out);
      break;
    case DType::kInt64:
      ProjRangeCompute<int64_t>(p, idx, ref_math, lo, hi, out);
      break;
    case DType::kFloat32:
      ProjRangeCompute<float>(p, idx, ref_math, lo, hi, out);
      break;
    default:
      ProjRangeCompute<double>(p, idx, ref_math, lo, hi, out);
      break;
  }
}

/// Converts the resolved literal through the exact unfused chain:
/// ScalarToTensor makes an int literal a kInt64 tensor *via a double cast*
/// and a float literal a kFloat32 tensor; To(compute) then static_casts.
/// Returns false for literal kinds the fused path does not handle.
bool ConvertNumericLit(const ScalarValue& v, DType col_dtype, DType* compute,
                       int64_t* lit_i, float* lit_f, double* lit_d) {
  if (v.is_int()) {
    const int64_t raw = static_cast<int64_t>(
        static_cast<double>(v.int_value()));
    *compute = PromoteTypes(col_dtype, DType::kInt64);
    switch (*compute) {
      case DType::kInt64:
        *lit_i = raw;
        return true;
      case DType::kFloat32:
        *lit_f = static_cast<float>(raw);
        return true;
      case DType::kFloat64:
        *lit_d = static_cast<double>(raw);
        return true;
      default:
        return false;
    }
  }
  if (v.is_float()) {
    const float raw = static_cast<float>(v.float_value());
    *compute = PromoteTypes(col_dtype, DType::kFloat32);
    switch (*compute) {
      case DType::kFloat32:
        *lit_f = raw;
        return true;
      case DType::kFloat64:
        *lit_d = static_cast<double>(raw);
        return true;
      default:
        return false;
    }
  }
  return false;
}

/// A numeric column the fused loops can address directly: plain encoding,
/// rank 1, one of the four numeric dtypes, dense, and autograd-free (the
/// unfused tensor ops would record autograd state the fused loops skip).
bool FusableNumericColumn(const Column& col) {
  if (col.encoding() != Encoding::kPlain) return false;
  const Tensor& t = col.data();
  if (t.dim() != 1 || !t.is_contiguous() || t.requires_grad()) return false;
  switch (t.dtype()) {
    case DType::kInt32:
    case DType::kInt64:
    case DType::kFloat32:
    case DType::kFloat64:
      return true;
    default:
      return false;
  }
}

enum class LeafStatus { kOk, kConstFalse, kConstTrue, kFallback };

}  // namespace

bool SetFusedEvalEnabled(bool enabled) {
  return g_fused_enabled.exchange(enabled, std::memory_order_relaxed);
}

bool FusedEvalEnabled() {
  return g_fused_enabled.load(std::memory_order_relaxed);
}

// ---- Compilation ------------------------------------------------------------

struct FusedCompiler {
  using LitSource = FusedFilterProject::LitSource;
  using Conjunct = FusedFilterProject::Conjunct;
  using Projection = FusedFilterProject::Projection;

  static bool CompileLit(const BoundExpr& e, LitSource* out) {
    if (e.kind == BoundExprKind::kLiteral) {
      const auto& lit = static_cast<const BoundLiteral&>(e);
      if (!lit.value.is_numeric() && !lit.value.is_string()) return false;
      out->is_param = false;
      out->literal = lit.value;
      return true;
    }
    if (e.kind == BoundExprKind::kParameter) {
      out->is_param = true;
      out->ordinal = static_cast<const BoundParameter&>(e).ordinal;
      return true;
    }
    return false;
  }

  static bool CmpFromOp(sql::BinaryOp op, CmpOp* out) {
    switch (op) {
      case sql::BinaryOp::kEq:
        *out = CmpOp::kEq;
        return true;
      case sql::BinaryOp::kNe:
        *out = CmpOp::kNe;
        return true;
      case sql::BinaryOp::kLt:
        *out = CmpOp::kLt;
        return true;
      case sql::BinaryOp::kLe:
        *out = CmpOp::kLe;
        return true;
      case sql::BinaryOp::kGt:
        *out = CmpOp::kGt;
        return true;
      case sql::BinaryOp::kGe:
        *out = CmpOp::kGe;
        return true;
      default:
        return false;
    }
  }

  static bool ArithFromOp(sql::BinaryOp op, ArithOp* out) {
    switch (op) {
      case sql::BinaryOp::kAdd:
        *out = ArithOp::kAdd;
        return true;
      case sql::BinaryOp::kSub:
        *out = ArithOp::kSub;
        return true;
      case sql::BinaryOp::kMul:
        *out = ArithOp::kMul;
        return true;
      default:
        return false;
    }
  }

  /// <colref> <cmp> <literal/param>, either operand order.
  static bool CompileConjunct(const BoundExpr& e, Conjunct* out) {
    if (e.kind != BoundExprKind::kBinary) return false;
    const auto& b = static_cast<const BoundBinary&>(e);
    if (!CmpFromOp(b.op, &out->op)) return false;
    if (b.left->kind == BoundExprKind::kColumnRef) {
      out->col = static_cast<const BoundColumnRef&>(*b.left).column_index;
      out->lit_on_left = false;
      return CompileLit(*b.right, &out->lit);
    }
    if (b.right->kind == BoundExprKind::kColumnRef) {
      out->col = static_cast<const BoundColumnRef&>(*b.right).column_index;
      out->lit_on_left = true;
      return CompileLit(*b.left, &out->lit);
    }
    return false;
  }

  /// Flattens an AND-tree of fusable conjuncts. The unfused path
  /// materializes every conjunct and LogicalAnds the bool masks; AND is
  /// associative and commutative over bool, so the flat conjunct list
  /// reproduces the tree's mask exactly.
  static bool CompilePredicate(const BoundExpr& e,
                               std::vector<Conjunct>* out) {
    if (e.kind == BoundExprKind::kBinary &&
        static_cast<const BoundBinary&>(e).op == sql::BinaryOp::kAnd) {
      const auto& b = static_cast<const BoundBinary&>(e);
      return CompilePredicate(*b.left, out) &&
             CompilePredicate(*b.right, out);
    }
    Conjunct c;
    if (!CompileConjunct(e, &c)) return false;
    out->push_back(std::move(c));
    return true;
  }

  /// Column passthrough, or <colref> +|-|* <numeric literal/param>.
  static bool CompileProjection(const BoundExpr& e, Projection* p) {
    if (e.kind == BoundExprKind::kColumnRef) {
      p->passthrough = true;
      p->col = static_cast<const BoundColumnRef&>(e).column_index;
      return true;
    }
    if (e.kind != BoundExprKind::kBinary) return false;
    const auto& b = static_cast<const BoundBinary&>(e);
    if (!ArithFromOp(b.op, &p->op)) return false;
    p->passthrough = false;
    if (b.left->kind == BoundExprKind::kColumnRef) {
      p->col = static_cast<const BoundColumnRef&>(*b.left).column_index;
      p->lit_on_left = false;
      return CompileLit(*b.right, &p->lit);
    }
    if (b.right->kind == BoundExprKind::kColumnRef) {
      p->col = static_cast<const BoundColumnRef&>(*b.right).column_index;
      p->lit_on_left = true;
      return CompileLit(*b.left, &p->lit);
    }
    return false;
  }
};

FusedProgramPtr FusedFilterProject::Compile(const plan::FilterNode& filter,
                                            const plan::ProjectNode* project) {
  auto program = std::shared_ptr<FusedFilterProject>(new FusedFilterProject());
  if (filter.predicate == nullptr ||
      !FusedCompiler::CompilePredicate(*filter.predicate,
                                       &program->conjuncts_)) {
    return nullptr;
  }
  if (project != nullptr) {
    std::vector<Projection> projections;
    bool ok = project->exprs.size() == project->schema.size();
    for (const BoundExprPtr& expr : project->exprs) {
      Projection p;
      if (!ok || !FusedCompiler::CompileProjection(*expr, &p)) {
        ok = false;
        break;
      }
      projections.push_back(std::move(p));
    }
    if (ok) {
      // A non-fusable projection list degrades to a filter-only program;
      // the caller keeps running the Project unfused.
      program->has_project_ = true;
      program->projections_ = std::move(projections);
      for (const auto& cs : project->schema) {
        program->project_names_.push_back(cs.name);
      }
    }
  }
  return program;
}

// ---- Execution --------------------------------------------------------------

namespace {

const ScalarValue* ResolveLit(const FusedFilterProject::LitSource& lit,
                              const ExecContext& ctx) {
  if (!lit.is_param) return &lit.literal;
  if (ctx.params == nullptr ||
      lit.ordinal >= static_cast<int64_t>(ctx.params->size())) {
    return nullptr;  // unfused path reports the binding error
  }
  const ScalarValue& v = (*ctx.params)[static_cast<size_t>(lit.ordinal)];
  return v.is_null() ? nullptr : &v;
}

LeafStatus ResolveCmpLeaf(const FusedFilterProject::Conjunct& c,
                          const Chunk& input, const ExecContext& ctx,
                          ResolvedCmp* out) {
  if (c.col < 0 || c.col >= input.num_columns()) return LeafStatus::kFallback;
  const ScalarValue* v = ResolveLit(c.lit, ctx);
  if (v == nullptr) return LeafStatus::kFallback;
  const Column& col = input.columns[static_cast<size_t>(c.col)];

  if (v->is_string()) {
    // Dictionary compare, lowered exactly as CompareStringLiteral lowers
    // it: normalize the literal to the right, then turn the string
    // predicate into an order-preserving code compare (an absent equality
    // code short-circuits the conjunct to a constant).
    if (col.encoding() != Encoding::kDictionary) return LeafStatus::kFallback;
    const Tensor& codes = col.data();
    if (codes.dtype() != DType::kInt64 || codes.dim() != 1 ||
        !codes.is_contiguous() || codes.requires_grad()) {
      return LeafStatus::kFallback;
    }
    const CmpOp norm = c.lit_on_left ? MirrorCmp(c.op) : c.op;
    const std::string& s = v->string_value();
    out->data = codes.data<int64_t>();
    out->col_dtype = DType::kInt64;
    out->compute = DType::kInt64;
    switch (norm) {
      case CmpOp::kEq: {
        const int64_t code = col.DictionaryCode(s);
        if (code < 0) return LeafStatus::kConstFalse;
        out->op = CmpOp::kEq;
        out->lit_i = code;
        return LeafStatus::kOk;
      }
      case CmpOp::kNe: {
        const int64_t code = col.DictionaryCode(s);
        if (code < 0) return LeafStatus::kConstTrue;
        out->op = CmpOp::kNe;
        out->lit_i = code;
        return LeafStatus::kOk;
      }
      case CmpOp::kLt:
        out->op = CmpOp::kLt;
        out->lit_i = col.LowerBoundCode(s);
        return LeafStatus::kOk;
      case CmpOp::kLe:
        out->op = CmpOp::kLt;
        out->lit_i = col.UpperBoundCode(s);
        return LeafStatus::kOk;
      case CmpOp::kGt:
        out->op = CmpOp::kGe;
        out->lit_i = col.UpperBoundCode(s);
        return LeafStatus::kOk;
      case CmpOp::kGe:
        out->op = CmpOp::kGe;
        out->lit_i = col.LowerBoundCode(s);
        return LeafStatus::kOk;
    }
    return LeafStatus::kFallback;
  }

  if (!v->is_numeric()) return LeafStatus::kFallback;
  if (!FusableNumericColumn(col)) return LeafStatus::kFallback;
  const Tensor& t = col.data();
  if (!ConvertNumericLit(*v, t.dtype(), &out->compute, &out->lit_i,
                         &out->lit_f, &out->lit_d)) {
    return LeafStatus::kFallback;
  }
  out->data = static_cast<const void*>(
      reinterpret_cast<const char*>(t.impl()->buffer->data()) +
      t.offset() * DTypeSize(t.dtype()));
  out->col_dtype = t.dtype();
  out->op = c.lit_on_left ? MirrorCmp(c.op) : c.op;
  return LeafStatus::kOk;
}

bool ResolveProjLeaf(const FusedFilterProject::Projection& p,
                     const Chunk& input, const ExecContext& ctx,
                     ResolvedProj* out) {
  if (p.col < 0 || p.col >= input.num_columns()) return false;
  out->passthrough = p.passthrough;
  out->col = p.col;
  if (p.passthrough) return true;
  const ScalarValue* v = ResolveLit(p.lit, ctx);
  if (v == nullptr || !v->is_numeric()) return false;
  const Column& col = input.columns[static_cast<size_t>(p.col)];
  if (!FusableNumericColumn(col)) return false;
  const Tensor& t = col.data();
  if (!ConvertNumericLit(*v, t.dtype(), &out->compute, &out->lit_i,
                         &out->lit_f, &out->lit_d)) {
    return false;
  }
  out->data = static_cast<const void*>(
      reinterpret_cast<const char*>(t.impl()->buffer->data()) +
      t.offset() * DTypeSize(t.dtype()));
  out->col_dtype = t.dtype();
  out->op = p.op;
  out->lit_on_left = p.lit_on_left;
  return true;
}

}  // namespace

std::optional<Chunk> FusedFilterProject::Execute(const Chunk& input,
                                                 const ExecContext& ctx) const {
  if (!FusedEvalEnabled() || ctx.soft_mode) return std::nullopt;

  std::vector<ResolvedCmp> cmps;
  cmps.reserve(conjuncts_.size());
  bool const_false = false;
  for (const Conjunct& c : conjuncts_) {
    ResolvedCmp r;
    switch (ResolveCmpLeaf(c, input, ctx, &r)) {
      case LeafStatus::kOk:
        cmps.push_back(r);
        break;
      case LeafStatus::kConstFalse:
        const_false = true;
        break;
      case LeafStatus::kConstTrue:
        break;  // drop: ANDing all-true changes nothing
      case LeafStatus::kFallback:
        return std::nullopt;
    }
  }

  std::vector<ResolvedProj> projs;
  if (has_project_) {
    projs.reserve(projections_.size());
    for (const Projection& p : projections_) {
      ResolvedProj r;
      if (!ResolveProjLeaf(p, input, ctx, &r)) return std::nullopt;
      projs.push_back(r);
    }
  }

  const int64_t n = input.num_rows();
  Tensor mask = Tensor::Empty({n}, DType::kBool, ctx.device);
  unsigned char* keep = reinterpret_cast<unsigned char*>(mask.data<bool>());
  if (n == 0) {
    // fall through: an empty mask selects nothing, matching the unfused
    // path over an empty morsel.
  } else if (const_false) {
    std::memset(keep, 0, static_cast<size_t>(n));
  } else if (cmps.empty()) {
    std::memset(keep, 1, static_cast<size_t>(n));
  } else {
    const bool ref_math = ctx.device == Device::kCpu;
    // Disjoint shards write disjoint mask ranges: bit-identical at any
    // thread count, and each shard runs all conjuncts with hot caches.
    ParallelFor(0, n, GrainForCost(static_cast<int64_t>(cmps.size()) * 2),
                [&](int64_t lo, int64_t hi) {
                  bool first = true;
                  for (const ResolvedCmp& c : cmps) {
                    CmpRangeDyn(c, ref_math, first, lo, hi, keep);
                    first = false;
                  }
                });
  }

  // The fused mask equals the unfused predicate mask element for element,
  // so selection through the shared NonZero keeps index order — and with
  // it every downstream result — identical to the unfused path.
  const Tensor indices = NonZero(mask);
  if (!has_project_) return input.Select(indices);

  const int64_t k = indices.numel();
  const int64_t* idx = indices.data<int64_t>();
  const bool ref_math = ctx.device == Device::kCpu;
  Chunk out;
  out.names = project_names_;
  for (const ResolvedProj& p : projs) {
    if (p.passthrough) {
      out.columns.push_back(
          input.columns[static_cast<size_t>(p.col)].Select(indices));
      continue;
    }
    Tensor result = Tensor::Empty({k}, p.compute, ctx.device);
    void* op = result.impl()->buffer->data();
    ParallelFor(0, k, GrainForCost(4), [&](int64_t lo, int64_t hi) {
      ProjRangeDyn(p, idx, ref_math, lo, hi, op);
    });
    out.columns.push_back(Column::Plain(std::move(result)));
  }
  return out;
}

}  // namespace exec
}  // namespace tdp
