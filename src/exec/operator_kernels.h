#ifndef TDP_EXEC_OPERATOR_KERNELS_H_
#define TDP_EXEC_OPERATOR_KERNELS_H_

#include <memory>
#include <unordered_map>
#include <vector>

#include "src/common/statusor.h"
#include "src/exec/operators.h"
#include "src/plan/logical_plan.h"

namespace tdp {
namespace exec {

struct SpilledJoinBuild;  // spill_kernels.h

// ---- Key normalization (shared with the spill kernels) ---------------------

/// Per-row integer codes whose equality and order agree with value
/// equality and order WITHIN this column: dictionary columns yield their
/// codes, PE columns hard-decode first, plain float columns rank through
/// Unique. Float ranks are relative to the whole column — for codes that
/// stay comparable across separately-encoded pages see
/// `OrderPreservingCodes` (spill_kernels.h).
StatusOr<std::vector<int64_t>> ColumnToCodes(const Column& column);

/// Normalized per-row join keys for one side (strings FNV-1a hashed,
/// numerics as -0-normalized double bit patterns). Row-local, so keys are
/// code-compatible across sides, morsels, and spill partitions.
StatusOr<std::vector<std::vector<int64_t>>> JoinRowKeys(
    const Chunk& chunk, const std::vector<int64_t>& cols);

// Per-operator execution kernels, shared by the two executors in
// `ExecutePlan`:
//
//   - the legacy materializing path (`ExecuteNode`) applies each kernel to
//     the whole relation, one node at a time;
//   - the morsel-driven streaming path (`ExecuteStreaming`) applies the
//     order-preserving kernels (scan/filter/project/join-probe) to bounded
//     row-range morsels and runs the breaker kernels (aggregate finalize,
//     sort, distinct, TVF) on deterministically assembled streams.
//
// Because both paths execute the *same* kernels over the same row
// sequences, their results are bit-identical at any thread count and
// morsel size — the invariant the streaming parity suite asserts.

// ---- Streaming operators (order-preserving, morsel-safe) -------------------

/// Resolves the scan's table from the run's catalog snapshot, validates the
/// bound schema, and returns the (zero-copy) column handles on the
/// execution device.
StatusOr<Chunk> ExecuteScan(const plan::ScanNode& node, const ExecContext& ctx);

StatusOr<Chunk> ExecuteFilter(const plan::FilterNode& node, const Chunk& input,
                              const ExecContext& ctx);

StatusOr<Chunk> ExecuteProject(const plan::ProjectNode& node,
                               const Chunk& input, const ExecContext& ctx);

/// Micro-batch model evaluation (the streaming form of a batchable
/// Filter/Project/TVF): slices `morsel` into `batch_rows`-row batches
/// (ctx.model_batch_rows overrides the node's compiled size when set),
/// runs the wrapped operator's kernel per batch, and concatenates outputs
/// in slice order. Because batchable bodies are row-local, the reassembled
/// result is bit-identical to evaluating the whole morsel at once — and,
/// transitively, to the whole-relation breaker path this stage replaced.
/// Zero- and single-batch inputs take a direct single call (preserving the
/// breaker path's empty-input semantics exactly). Polls `ctx.cancel`
/// between batches.
StatusOr<Chunk> ExecuteModelEval(const plan::ModelEvalNode& node,
                                 const Chunk& morsel, const ExecContext& ctx);

// ---- Hash join: build consumer + streaming probe ---------------------------

/// FNV-1a over a row's normalized key codes.
struct RowKeyHash {
  size_t operator()(const std::vector<int64_t>& key) const {
    size_t h = 0xcbf29ce484222325ull;
    for (int64_t v : key) {
      h ^= static_cast<size_t>(v);
      h *= 0x100000001b3ull;
    }
    return h;
  }
};

/// The build side of a hash join, materialized by the build pipeline.
/// Probe emission order is deterministic by construction: matches for a
/// probe row are emitted in ascending build-row order (an explicit
/// `std::vector` per key, not an `unordered_multimap`, whose equal-range
/// order is implementation-defined).
struct JoinHashTable {
  /// The join's materialized build side: the right child by default, the
  /// left when the optimizer flipped `JoinNode::build_left` (smaller
  /// estimated input).
  Chunk build;
  /// Normalized key -> build row indices, ascending.
  std::unordered_map<std::vector<int64_t>, std::vector<int64_t>, RowKeyHash>
      rows;
  /// Set instead of `build`/`rows` when the build went grace (the build
  /// footprint exceeded the run's `MemoryBudget`): the payload lives in
  /// per-partition spill files and `ProbeJoin` dispatches to
  /// `ProbeSpilledJoin`. Shared so morsel probes can run concurrently.
  std::shared_ptr<const SpilledJoinBuild> spilled;
};

/// Builds the hash table over the join's build child output (see
/// `JoinNode::build_left`). Pure-residual joins (no equi keys) leave
/// `rows` empty and probe as a per-morsel cartesian product.
StatusOr<JoinHashTable> BuildJoinHashTable(const plan::JoinNode& node,
                                           Chunk build_input,
                                           const ExecContext& ctx);

/// Probes `probe` (a morsel of the join's probe-child stream) against the
/// build table: emits matches in probe-row-major order, applies the
/// residual predicate, and assembles the joined chunk in schema order
/// (left child's columns first, whichever side was the build) — the same
/// row order whether `probe` is one morsel or the whole relation.
StatusOr<Chunk> ProbeJoin(const plan::JoinNode& node, const JoinHashTable& ht,
                          const Chunk& probe, const ExecContext& ctx);

// ---- Aggregate: per-morsel input evaluation + deterministic finalize -------

/// Per-morsel partial state of the aggregate consumer: the evaluated group
/// key columns and aggregate argument columns. Evaluation (the tensor-
/// program part) runs morsel-parallel; the merge concatenates parts in
/// morsel order, so the reduction tree seen by `FinalizeAggregate` depends
/// only on the total row sequence — never on morsel size or thread count.
struct AggInputs {
  int64_t rows = 0;
  std::vector<Column> key_columns;  // one per group expr
  std::vector<Column> arg_columns;  // one per aggregate; undefined if no arg
};

StatusOr<AggInputs> EvaluateAggInputs(const plan::AggregateNode& node,
                                      const Chunk& input,
                                      const ExecContext& ctx);

/// Concatenates per-morsel parts in morsel order (the deterministic merge
/// at the breaker).
AggInputs MergeAggInputs(const std::vector<const AggInputs*>& parts);

/// Groups, accumulates (fixed 4096-row blocks, block-order combine) and
/// materializes the aggregate output columns.
StatusOr<Chunk> FinalizeAggregate(const plan::AggregateNode& node,
                                  const AggInputs& inputs,
                                  const ExecContext& ctx);

// ---- Breakers (whole-relation kernels) -------------------------------------

StatusOr<Chunk> ExecuteTvfScan(const plan::TvfScanNode& node, Chunk input,
                               const ExecContext& ctx);
StatusOr<Chunk> ExecuteSort(const plan::SortNode& node, const Chunk& input,
                            const ExecContext& ctx);
StatusOr<Chunk> ExecuteLimit(const plan::LimitNode& node, const Chunk& input);
StatusOr<Chunk> ExecuteDistinct(const Chunk& input);

/// Index-accelerated top-k similarity (see `plan::IndexTopKNode`): probes
/// the run snapshot's vector index for candidate rows
/// (`ExecContext::index_probes` cells; 0 = all), re-ranks them exactly
/// with the plan's own similarity expression (stable descending sort, so
/// full-probe results are bit-identical to the Sort+Limit plan the node
/// replaced), and projects the winners. Falls back to that exact
/// computation when the snapshot no longer holds a valid index.
StatusOr<Chunk> ExecuteIndexTopK(const plan::IndexTopKNode& node,
                                 const Chunk& input, const ExecContext& ctx);

// ---- DDL / DML kernels (root breakers, both executors) ---------------------
//
// Each computes its write delta against the run's immutable snapshot
// (`ctx.catalog`), installs it through `ctx.writer->ApplyDmlWrite` (or
// RegisterTable for CREATE TABLE), and returns the single-row
// `rows_affected` chunk the plan's schema declares. A lost write-write
// race surfaces as a retryable ExecutionError; a null `ctx.writer` as a
// clean "read-only execution context" error. Index entries over the
// written table travel with the swap: INSERT extends them incrementally
// (IvfIndex::WithAppended), DELETE re-tags them (shared index storage, the
// deleted-row bitmap filters probes), UPDATE re-tags only when the write
// provably preserved physical row identity of the indexed column.

StatusOr<Chunk> ExecuteCreateTable(const plan::CreateTableNode& node,
                                   const ExecContext& ctx);
/// `source` is the evaluated SELECT child for INSERT ... SELECT; pass an
/// empty chunk for the VALUES form (rows evaluated from `node.rows`).
StatusOr<Chunk> ExecuteInsert(const plan::InsertNode& node,
                              const Chunk& source, const ExecContext& ctx);
/// `input` is the full-table scan of children[0] (old rows).
StatusOr<Chunk> ExecuteUpdate(const plan::UpdateNode& node,
                              const Chunk& input, const ExecContext& ctx);
StatusOr<Chunk> ExecuteDelete(const plan::DeleteNode& node,
                              const Chunk& input, const ExecContext& ctx);

}  // namespace exec
}  // namespace tdp

#endif  // TDP_EXEC_OPERATOR_KERNELS_H_
