#include "src/runtime/session.h"

#include "src/plan/optimizer.h"
#include "src/sql/binder.h"
#include "src/sql/parser.h"

namespace tdp {

Session::Session()
    : catalog_(std::make_shared<Catalog>()),
      registry_(std::make_unique<udf::FunctionRegistry>()) {}

Status Session::RegisterTable(const std::string& name,
                              std::shared_ptr<Table> table, Device device) {
  if (table == nullptr) {
    return Status::InvalidArgument("cannot register a null table");
  }
  if (device != Device::kCpu) table = table->To(device);
  return catalog_->RegisterTable(name, std::move(table), /*replace=*/true);
}

Status Session::RegisterTensor(const std::string& name, Tensor tensor,
                               Device device) {
  if (!tensor.defined()) {
    return Status::InvalidArgument("cannot register an undefined tensor");
  }
  TDP_ASSIGN_OR_RETURN(
      std::shared_ptr<Table> table,
      Table::Create(name, {"value"}, {Column::Plain(std::move(tensor))}));
  return RegisterTable(name, std::move(table), device);
}

StatusOr<std::shared_ptr<exec::CompiledQuery>> Session::Query(
    const std::string& sql, const QueryOptions& options) {
  TDP_ASSIGN_OR_RETURN(auto statement, sql::Parse(sql));
  sql::Binder binder(*catalog_, *registry_);
  TDP_ASSIGN_OR_RETURN(plan::LogicalNodePtr logical_plan,
                       binder.Bind(*statement));
  logical_plan = plan::Optimize(std::move(logical_plan));
  return std::make_shared<exec::CompiledQuery>(
      std::move(logical_plan), catalog_, options.device, options.trainable);
}

StatusOr<std::shared_ptr<Table>> Session::Sql(const std::string& sql,
                                              const QueryOptions& options) {
  TDP_ASSIGN_OR_RETURN(auto query, Query(sql, options));
  return query->Run();
}

StatusOr<std::string> Session::Explain(const std::string& sql,
                                       const QueryOptions& options) {
  TDP_ASSIGN_OR_RETURN(auto query, Query(sql, options));
  return query->Explain();
}

}  // namespace tdp
