#include "src/runtime/session.h"

#include <cctype>
#include <set>

#include "src/common/string_util.h"
#include "src/plan/optimizer.h"
#include "src/runtime/inference_scheduler.h"
#include "src/sql/binder.h"
#include "src/sql/parser.h"

namespace tdp {
namespace {

/// Normalizes SQL text for plan-cache keying: outside quoted literals,
/// whitespace runs (and `--` line comments) collapse to a single space and
/// letters fold to lowercase; quoted literals are preserved byte-for-byte.
/// Statements differing only in case or layout share one cache entry.
std::string NormalizeSql(const std::string& sql) {
  std::string out;
  out.reserve(sql.size());
  bool pending_space = false;
  size_t i = 0;
  const size_t n = sql.size();
  while (i < n) {
    const char c = sql[i];
    if (c == '\'' || c == '"') {
      if (pending_space && !out.empty()) out += ' ';
      pending_space = false;
      const char quote = c;
      out += c;
      ++i;
      while (i < n && sql[i] != quote) out += sql[i++];
      if (i < n) out += sql[i++];  // closing quote
      continue;
    }
    if (c == '-' && i + 1 < n && sql[i + 1] == '-') {
      while (i < n && sql[i] != '\n') ++i;
      pending_space = true;
      continue;
    }
    if (std::isspace(static_cast<unsigned char>(c))) {
      pending_space = true;
      ++i;
      continue;
    }
    if (pending_space && !out.empty()) out += ' ';
    pending_space = false;
    out += static_cast<char>(std::tolower(static_cast<unsigned char>(c)));
    ++i;
  }
  return out;
}

/// Every table name the plan touches (lowercased): scans, index probes and
/// write targets alike. These are the tables whose schema epochs decide a
/// cache entry's freshness.
void CollectPlanTables(const plan::LogicalNode& node,
                       std::set<std::string>& out) {
  switch (node.kind) {
    case plan::NodeKind::kScan:
      out.insert(ToLower(static_cast<const plan::ScanNode&>(node).table_name));
      break;
    case plan::NodeKind::kIndexTopK:
      out.insert(
          ToLower(static_cast<const plan::IndexTopKNode&>(node).table_name));
      break;
    case plan::NodeKind::kCreateTable:
      out.insert(
          ToLower(static_cast<const plan::CreateTableNode&>(node).table_name));
      break;
    case plan::NodeKind::kInsert:
      out.insert(
          ToLower(static_cast<const plan::InsertNode&>(node).table_name));
      break;
    case plan::NodeKind::kUpdate:
      out.insert(
          ToLower(static_cast<const plan::UpdateNode&>(node).table_name));
      break;
    case plan::NodeKind::kDelete:
      out.insert(
          ToLower(static_cast<const plan::DeleteNode&>(node).table_name));
      break;
    default:
      break;
  }
  for (const auto& child : node.children) CollectPlanTables(*child, out);
}

std::vector<std::pair<std::string, uint64_t>> CollectPlanDeps(
    const plan::LogicalNode& plan, const Catalog& snapshot) {
  std::set<std::string> tables;
  CollectPlanTables(plan, tables);
  std::vector<std::pair<std::string, uint64_t>> deps;
  deps.reserve(tables.size());
  for (const std::string& table : tables) {
    deps.emplace_back(table, snapshot.SchemaEpoch(table));
  }
  return deps;
}

bool DepsFresh(const std::vector<std::pair<std::string, uint64_t>>& deps,
               const Catalog& snapshot) {
  for (const auto& [table, epoch] : deps) {
    if (snapshot.SchemaEpoch(table) != epoch) return false;
  }
  return true;
}

std::string CacheKey(const std::string& sql, const QueryOptions& options) {
  std::string key = NormalizeSql(sql);
  key += '\x1f';
  key += std::to_string(static_cast<int>(options.device));
  key += options.trainable ? "/t" : "/e";
  // Executor selection / morsel sizing are per-run state (exec::RunOptions),
  // not plan state, so they are deliberately NOT part of the key: clients
  // running with different morsel sizes share one cached plan.
  return key;
}

}  // namespace

Session::Session()
    : catalog_(std::make_shared<SharedCatalog>()),
      registry_(std::make_unique<udf::FunctionRegistry>()) {}

Status Session::RegisterTable(const std::string& name,
                              std::shared_ptr<Table> table, Device device) {
  if (table == nullptr) {
    return Status::InvalidArgument("cannot register a null table");
  }
  if (device != Device::kCpu) table = table->To(device);
  // Registration is DDL: it bumps `name`'s schema epoch, invalidating
  // exactly the cached plans that touch `name` (entries are epoch-checked
  // on lookup). Plans over other tables keep hitting.
  return catalog_->RegisterTable(name, std::move(table), /*replace=*/true);
}

Status Session::RegisterTensor(const std::string& name, Tensor tensor,
                               Device device) {
  if (!tensor.defined()) {
    return Status::InvalidArgument("cannot register an undefined tensor");
  }
  TDP_ASSIGN_OR_RETURN(
      std::shared_ptr<Table> table,
      Table::Create(name, {"value"}, {Column::Plain(std::move(tensor))}));
  return RegisterTable(name, std::move(table), device);
}

Status Session::CreateVectorIndex(const std::string& table,
                                  const std::string& column,
                                  const index::IvfIndex::Options& options,
                                  uint64_t seed) {
  // Index creation bumps `table`'s schema epoch: previously-compiled
  // brute-force top-k statements over it recompile on their next
  // Prepare/Sql — and can now rewrite to IndexTopK. Plans over other
  // tables are untouched.
  return catalog_->CreateVectorIndex(table, column, options, seed);
}

Status Session::DropVectorIndex(const std::string& table,
                                const std::string& column) {
  return catalog_->DropVectorIndex(table, column);
}

StatusOr<std::shared_ptr<exec::CompiledQuery>> Session::Query(
    const std::string& sql, const QueryOptions& options) {
  TDP_ASSIGN_OR_RETURN(auto statement, sql::ParseStatement(sql));
  // Bind against one immutable snapshot; the compiled query re-resolves
  // tables from the live catalog at each Run().
  const std::shared_ptr<const Catalog> snapshot = catalog_->Snapshot();
  sql::Binder binder(*snapshot, *registry_);
  TDP_ASSIGN_OR_RETURN(plan::LogicalNodePtr logical_plan,
                       binder.Bind(*statement));
  logical_plan = plan::Optimize(std::move(logical_plan), snapshot.get());
  // Session-compiled queries share the process-wide inference scheduler:
  // batchable model calls from concurrent cursors coalesce into shared
  // forward passes. (Trainable queries ignore the dispatcher — the
  // CompiledQuery drops it to keep autograd graphs per-query.)
  return std::make_shared<exec::CompiledQuery>(
      std::move(logical_plan), catalog_, options.device, options.trainable,
      &runtime::InferenceScheduler::Global());
}

StatusOr<std::shared_ptr<exec::CompiledQuery>> Session::Prepare(
    const std::string& sql, const QueryOptions& options) {
  // Trainable queries carry mutable module state (training_mode, module
  // parameters) and must not be shared behind the caller's back.
  if (!options.use_plan_cache || options.trainable) {
    return Query(sql, options);
  }
  const std::string key = CacheKey(sql, options);
  // Snapshot BEFORE compiling: the entry's dep epochs are read from this
  // snapshot, so if DDL lands between the read and the bind, the entry is
  // born stale and merely recompiled on the next lookup — never served
  // against a vanished schema. The same snapshot validates an existing
  // entry's deps (per-table: only DDL on a touched table invalidates).
  const std::shared_ptr<const Catalog> pre = catalog_->Snapshot();

  {
    std::unique_lock<std::mutex> lock(mu_);
    if (capacity_ == 0) {
      lock.unlock();  // compile outside the lock, like the miss path
      return Query(sql, options);
    }
    auto it = index_.find(key);
    if (it != index_.end()) {
      if (DepsFresh(it->second->deps, *pre)) {
        ++stats_.hits;
        lru_.splice(lru_.begin(), lru_, it->second);  // move to MRU
        return it->second->query;
      }
      ++stats_.invalidations;
      lru_.erase(it->second);
      index_.erase(it);
    }
    ++stats_.misses;
  }

  // Compile outside the lock: one slow bind must not serialize the other
  // clients. Two threads racing on the same cold key both compile; the
  // later insert wins (both plans are equivalent).
  TDP_ASSIGN_OR_RETURN(std::shared_ptr<exec::CompiledQuery> query,
                       Query(sql, options));
  std::vector<std::pair<std::string, uint64_t>> deps =
      CollectPlanDeps(query->plan(), *pre);

  std::lock_guard<std::mutex> lock(mu_);
  auto it = index_.find(key);
  if (it != index_.end()) {
    lru_.erase(it->second);
    index_.erase(it);
  }
  lru_.push_front(CacheEntry{key, query, std::move(deps)});
  index_[key] = lru_.begin();
  while (lru_.size() > capacity_) {
    ++stats_.evictions;
    index_.erase(lru_.back().key);
    lru_.pop_back();
  }
  return query;
}

StatusOr<std::shared_ptr<Table>> Session::Sql(const std::string& sql,
                                              const QueryOptions& options,
                                              const exec::RunOptions& run) {
  TDP_ASSIGN_OR_RETURN(auto query, Prepare(sql, options));
  return query->Run(run);
}

StatusOr<std::unique_ptr<exec::ResultCursor>> Session::Execute(
    const std::string& sql, const QueryOptions& options,
    exec::RunOptions run) {
  TDP_ASSIGN_OR_RETURN(auto query, Prepare(sql, options));
  return query->Open(std::move(run));
}

StatusOr<std::string> Session::Explain(const std::string& sql,
                                       const QueryOptions& options) {
  // Non-inserting peek: serve the plan from the cache when a fresh entry
  // exists, but without touching LRU order or stats; on miss, compile
  // outside the cache entirely. EXPLAIN is an inspection tool — a burst of
  // ad-hoc EXPLAINs must not evict the hot serving plans.
  if (options.use_plan_cache && !options.trainable) {
    const std::string key = CacheKey(sql, options);
    const std::shared_ptr<const Catalog> snapshot = catalog_->Snapshot();
    std::shared_ptr<exec::CompiledQuery> cached;
    {
      std::lock_guard<std::mutex> lock(mu_);
      auto it = index_.find(key);
      if (it != index_.end() && DepsFresh(it->second->deps, *snapshot)) {
        cached = it->second->query;
      }
    }
    // Render outside the lock: plan-tree stringification must not stall
    // concurrent Prepare() cache hits on the serving path.
    if (cached != nullptr) return cached->Explain();
  }
  TDP_ASSIGN_OR_RETURN(auto query, Query(sql, options));
  return query->Explain();
}

PlanCacheStats Session::plan_cache_stats() const {
  std::lock_guard<std::mutex> lock(mu_);
  PlanCacheStats stats = stats_;
  stats.size = lru_.size();
  stats.capacity = capacity_;
  return stats;
}

void Session::set_plan_cache_capacity(size_t capacity) {
  std::lock_guard<std::mutex> lock(mu_);
  capacity_ = capacity;
  while (lru_.size() > capacity_) {
    ++stats_.evictions;
    index_.erase(lru_.back().key);
    lru_.pop_back();
  }
}

}  // namespace tdp
