#include "src/runtime/inference_scheduler.h"

#include <algorithm>
#include <cstdio>
#include <sstream>
#include <utility>

#include "src/common/logging.h"

namespace tdp {
namespace runtime {
namespace {

std::string PointerKey(const void* p) {
  std::ostringstream os;
  os << p;
  return os.str();
}

/// Exact fingerprint of one constant argument. Two calls may share a
/// coalesced forward only when every constant they pass is identical —
/// a near-miss (embed("dog") vs embed("cat")) must land in a different
/// group, so primitives are rendered exactly (hexfloat for doubles, length
/// -prefixed strings) and tensors by handle identity (the address of the
/// shared TensorImpl's shape vector) — conservative, never wrong.
std::string ScalarFingerprint(const exec::ScalarValue& v) {
  if (v.is_null()) return "n";
  if (v.is_int()) return "i" + std::to_string(v.int_value());
  if (v.is_float()) {
    char buf[64];
    std::snprintf(buf, sizeof(buf), "f%a", v.float_value());
    return buf;
  }
  if (v.is_bool()) return v.bool_value() ? "b1" : "b0";
  if (v.is_string()) {
    const std::string& s = v.string_value();
    return "t" + std::to_string(s.size()) + ":" + s;
  }
  TDP_CHECK(v.is_tensor());
  return "T" + PointerKey(&v.tensor_value().shape());
}

/// Group key: model identity + device + every constant argument. Model
/// identity is the registered nn::Module set when the function closes over
/// modules — the SAME model registered under the same name in several
/// sessions (each session owns its FunctionRegistry) then coalesces across
/// them — and the ScalarFunction object itself for module-free bodies,
/// where name equality across registries proves nothing.
std::string GroupKey(const udf::ScalarFunction& fn,
                     const std::vector<udf::Argument>& args, Device device) {
  std::string key;
  if (!fn.modules.empty()) {
    key += fn.name;
    for (const auto& m : fn.modules) key += "@" + PointerKey(m.get());
  } else {
    key += "#" + PointerKey(&fn);
  }
  key += "|d" + std::to_string(static_cast<int>(device));
  for (const udf::Argument& arg : args) {
    key += arg.is_scalar ? "|s:" + ScalarFingerprint(arg.scalar) : "|c";
  }
  return key;
}

/// Only plain-encoded column arguments coalesce: concatenating dictionary
/// or PE columns from different queries would require merging their
/// dictionaries/domains, and a length mismatch with num_rows would break
/// the per-request output split.
bool CoalescableArgs(const std::vector<udf::Argument>& args,
                     int64_t num_rows) {
  for (const udf::Argument& arg : args) {
    if (arg.is_scalar) continue;
    if (arg.column.encoding() != Encoding::kPlain) return false;
    if (arg.column.length() != num_rows) return false;
  }
  return true;
}

}  // namespace

InferenceScheduler::InferenceScheduler() : InferenceScheduler(Options{}) {}

InferenceScheduler::InferenceScheduler(Options options)
    : options_(options) {}

InferenceScheduler& InferenceScheduler::Global() {
  static InferenceScheduler* scheduler = new InferenceScheduler();
  return *scheduler;
}

InferenceScheduler::Stats InferenceScheduler::stats() const {
  std::lock_guard<std::mutex> lock(mu_);
  return stats_;
}

void InferenceScheduler::ResetStats() {
  std::lock_guard<std::mutex> lock(mu_);
  stats_ = Stats{};
}

namespace {

/// Column-argument shape compatibility between two queued requests: the
/// concatenated tensor needs one dtype, one device, and one trailing
/// (per-row) shape. Constant args are already equal by group key.
bool ArgsCompatible(const std::vector<udf::Argument>& a,
                    const std::vector<udf::Argument>& b) {
  if (a.size() != b.size()) return false;
  for (size_t i = 0; i < a.size(); ++i) {
    if (a[i].is_scalar != b[i].is_scalar) return false;
    if (a[i].is_scalar) continue;
    const Tensor& ta = a[i].column.data();
    const Tensor& tb = b[i].column.data();
    if (ta.dtype() != tb.dtype() || ta.device() != tb.device() ||
        ta.dim() != tb.dim()) {
      return false;
    }
    for (int64_t d = 1; d < ta.dim(); ++d) {
      if (ta.size(d) != tb.size(d)) return false;
    }
  }
  return true;
}

/// Runs the (possibly coalesced) forward. Called with no scheduler lock
/// held — the model body may ParallelFor freely.
StatusOr<Column> RunForward(const udf::ScalarFunction& fn,
                            const std::vector<const std::vector<udf::Argument>*>&
                                request_args,
                            const std::vector<int64_t>& request_rows,
                            int64_t total_rows, Device device) {
  if (request_args.size() == 1) {
    return fn.fn(*request_args[0], request_rows[0], device);
  }
  const size_t num_args = request_args[0]->size();
  std::vector<udf::Argument> combined(num_args);
  for (size_t i = 0; i < num_args; ++i) {
    const udf::Argument& first = (*request_args[0])[i];
    if (first.is_scalar) {
      combined[i] = first;
      continue;
    }
    std::vector<Column> parts;
    parts.reserve(request_args.size());
    for (const auto* args : request_args) parts.push_back((*args)[i].column);
    combined[i].is_scalar = false;
    combined[i].column = Column::Concat(parts);
  }
  TDP_ASSIGN_OR_RETURN(Column out, fn.fn(combined, total_rows, device));
  if (out.length() != total_rows) {
    return Status::Internal(
        "batchable UDF " + fn.name + " returned " +
        std::to_string(out.length()) + " rows for a coalesced batch of " +
        std::to_string(total_rows));
  }
  return out;
}

}  // namespace

void InferenceScheduler::LeadBatch(Group& group, const udf::ScalarFunction& fn,
                                   Device device, int64_t target_rows,
                                   std::unique_lock<std::mutex>& lock) {
  const auto queued_rows = [&group]() {
    int64_t rows = 0;
    for (const Request* r : group.queue) rows += r->rows;
    return rows;
  };
  // The coalescing window: linger for co-arrivals, but only when another
  // call is actually in flight — a solo client launches immediately.
  if (active_calls_ > 1 && options_.coalescing_window.count() > 0) {
    const auto deadline =
        std::chrono::steady_clock::now() + options_.coalescing_window;
    while (queued_rows() < target_rows) {
      if (group.cv.wait_until(lock, deadline) == std::cv_status::timeout) {
        break;
      }
    }
  }

  // Claim the longest compatible FIFO prefix up to the batch target.
  // Stopping (not skipping) at the first incompatible request keeps the
  // queue strictly FIFO — no request can starve behind later arrivals.
  std::vector<Request*> batch;
  int64_t total = 0;
  while (!group.queue.empty()) {
    Request* r = group.queue.front();
    if (!batch.empty() &&
        (total + r->rows > target_rows ||
         !ArgsCompatible(*batch.front()->args, *r->args))) {
      break;
    }
    r->claimed = true;
    total += r->rows;
    batch.push_back(r);
    group.queue.pop_front();
  }
  TDP_CHECK(!batch.empty());
  ++stats_.forwards;
  if (batch.size() > 1) {
    ++stats_.coalesced_forwards;
    stats_.coalesced_requests += static_cast<int64_t>(batch.size());
  }

  std::vector<const std::vector<udf::Argument>*> request_args;
  std::vector<int64_t> request_rows;
  request_args.reserve(batch.size());
  request_rows.reserve(batch.size());
  for (const Request* r : batch) {
    request_args.push_back(r->args);
    request_rows.push_back(r->rows);
  }

  lock.unlock();
  StatusOr<Column> out =
      RunForward(fn, request_args, request_rows, total, device);
  lock.lock();

  if (!out.ok()) {
    for (Request* r : batch) {
      r->status = out.status();
      r->done = true;
    }
  } else if (batch.size() == 1) {
    batch.front()->result = std::move(out).value();
    batch.front()->done = true;
  } else {
    // Zero-copy split: each caller gets a row-range view of the shared
    // output column, in the queue's FIFO order.
    const Column combined = std::move(out).value();
    int64_t offset = 0;
    for (Request* r : batch) {
      r->result = combined.SliceRows(offset, r->rows);
      offset += r->rows;
      r->done = true;
    }
  }
  group.has_leader = false;
  group.cv.notify_all();
}

StatusOr<Column> InferenceScheduler::CallScalar(
    const udf::ScalarFunction& fn, const std::vector<udf::Argument>& args,
    int64_t num_rows, Device device, const exec::CancellationToken* cancel) {
  const int64_t target_rows = fn.preferred_batch_rows > 0
                                  ? fn.preferred_batch_rows
                                  : udf::kDefaultModelBatchRows;
  // Requests at or above the batch target gain nothing from sharing a
  // forward (they fill one alone); non-batchable calls must never be
  // coalesced; exotic argument encodings can't be split exactly.
  const bool coalescable = fn.batchable && num_rows > 0 &&
                           num_rows < target_rows &&
                           CoalescableArgs(args, num_rows);

  std::unique_lock<std::mutex> lock(mu_);
  ++stats_.calls;
  stats_.rows += num_rows;
  Group* group = nullptr;
  if (coalescable) {
    group = &groups_[GroupKey(fn, args, device)];
    if (group->queue.size() >= options_.max_pending_requests) {
      group = nullptr;  // backpressure: fall through to the direct call
    }
  }
  if (group == nullptr) {
    ++stats_.direct_calls;
    ++stats_.forwards;
    lock.unlock();
    return fn.fn(args, num_rows, device);
  }

  Request req;
  req.args = &args;
  req.rows = num_rows;
  req.cancel = cancel;
  ++active_calls_;
  group->queue.push_back(&req);
  group->cv.notify_all();

  while (!req.done) {
    if (!req.claimed && cancel != nullptr && cancel->cancelled()) {
      auto it = std::find(group->queue.begin(), group->queue.end(), &req);
      TDP_CHECK(it != group->queue.end());
      group->queue.erase(it);
      ++stats_.withdrawn;
      --active_calls_;
      return Status::Cancelled(
          "inference request withdrawn: query run cancelled");
    }
    if (!group->has_leader && !group->queue.empty()) {
      group->has_leader = true;
      LeadBatch(*group, fn, device, target_rows, lock);
      continue;
    }
    // Timed wait so an unclaimed request notices cancellation promptly
    // even with no scheduler activity.
    group->cv.wait_for(lock, std::chrono::milliseconds(1));
  }
  --active_calls_;
  if (!req.status.ok()) return req.status;
  if (cancel != nullptr && cancel->cancelled()) {
    return Status::Cancelled("query run cancelled");
  }
  return std::move(req.result);
}

}  // namespace runtime
}  // namespace tdp
