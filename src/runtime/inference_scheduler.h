#ifndef TDP_RUNTIME_INFERENCE_SCHEDULER_H_
#define TDP_RUNTIME_INFERENCE_SCHEDULER_H_

#include <chrono>
#include <condition_variable>
#include <cstdint>
#include <deque>
#include <mutex>
#include <string>
#include <unordered_map>
#include <vector>

#include "src/common/statusor.h"
#include "src/exec/bound_expr.h"
#include "src/exec/run_options.h"
#include "src/storage/column.h"
#include "src/udf/registry.h"

namespace tdp {
namespace runtime {

/// Process-wide cross-query inference batching (the serving half of the
/// ModelEval refactor). Every batchable scalar-UDF call issued by a
/// Session-compiled query routes through here instead of invoking the
/// model body directly; calls for the SAME model with the SAME constant
/// arguments that arrive close together — e.g. eight concurrent embed()
/// clients, each slicing its morsels into ModelEval micro-batches — are
/// coalesced into one forward pass, then the output column is split back
/// per caller with zero-copy row slices.
///
/// Exactness: coalescing is only attempted for batchable (row-local)
/// functions, so the bytes each caller receives are identical to a direct
/// call — the same contract that lets ModelEval micro-batch a morsel. TVF
/// outputs are never coalesced across queries (their row counts may vary
/// per input row, so per-request result splitting is not well defined);
/// TVFs gain streaming only through the per-query ModelEval stage.
///
/// Scheduling: callers enqueue into a FIFO group keyed by (model identity,
/// constant args, device). The first caller to find the group leaderless
/// becomes the leader: it waits up to `Options::coalescing_window` for
/// co-arrivals (only when other calls are in flight — a solo client pays
/// zero added latency), claims the longest compatible FIFO prefix up to
/// the model's preferred batch rows, runs ONE forward, and distributes the
/// slices. Leadership then passes to the next queued caller, so the queue
/// drains without a dedicated scheduler thread. The queue is bounded:
/// callers finding it full fall back to a direct call (backpressure
/// degrades to solo latency, never blocks unboundedly).
///
/// Deadlock freedom: followers block on a condition variable holding no
/// locks, and the leader runs the forward outside the scheduler mutex.
/// The forward's internal ParallelFor self-completes even when every pool
/// worker is parked here as a follower, because ParallelFor's caller runs
/// its own shards (help-first scheduling in common/thread_pool.cc).
///
/// Cancellation: a follower whose run is cancelled (cursor closed, client
/// disconnect) withdraws its request if no leader has claimed it yet and
/// returns kCancelled immediately; once claimed, it waits out the shared
/// forward (bounded by one batch) and then reports kCancelled.
class InferenceScheduler : public exec::UdfDispatcher {
 public:
  struct Options {
    /// How long a leader lingers for co-arrivals before launching the
    /// forward. Only paid when another CallScalar is concurrently in
    /// flight; solo callers launch immediately.
    std::chrono::microseconds coalescing_window{200};
    /// Bound on queued requests per model group; arrivals beyond it take
    /// the direct-call path instead of queueing (backpressure).
    size_t max_pending_requests = 64;
  };

  /// Cumulative counters (monotonic; read via `stats()`).
  struct Stats {
    int64_t calls = 0;            ///< CallScalar invocations
    int64_t rows = 0;             ///< total input rows across calls
    int64_t direct_calls = 0;     ///< bypassed the queue (non-coalescable,
                                  ///< oversized, or backpressure)
    int64_t forwards = 0;         ///< model forward passes executed
    int64_t coalesced_forwards = 0;  ///< forwards serving >= 2 requests
    int64_t coalesced_requests = 0;  ///< requests served by a shared forward
    int64_t withdrawn = 0;  ///< requests cancelled before a leader claimed them
  };

  InferenceScheduler();  // default Options
  explicit InferenceScheduler(Options options);

  InferenceScheduler(const InferenceScheduler&) = delete;
  InferenceScheduler& operator=(const InferenceScheduler&) = delete;

  /// The process-wide scheduler every `Session` hands its compiled queries
  /// (mirroring `ThreadPool::Global()`): sessions are how concurrent
  /// clients reach the same models, so sharing one scheduler across them
  /// is precisely what lets their forward passes coalesce.
  static InferenceScheduler& Global();

  /// exec::UdfDispatcher: called by the expression evaluator for batchable
  /// scalar UDFs. Thread-safe; returns bytes identical to `fn.fn(args,
  /// num_rows, device)`.
  StatusOr<Column> CallScalar(const udf::ScalarFunction& fn,
                              const std::vector<udf::Argument>& args,
                              int64_t num_rows, Device device,
                              const exec::CancellationToken* cancel) override;

  Stats stats() const;
  void ResetStats();

 private:
  struct Request {
    const std::vector<udf::Argument>* args = nullptr;
    int64_t rows = 0;
    const exec::CancellationToken* cancel = nullptr;
    bool claimed = false;  ///< a leader owns it; withdrawal no longer possible
    bool done = false;
    Status status;
    Column result;
  };

  /// One model group: FIFO queue + leader flag. Groups are never erased —
  /// the map is bounded by the number of distinct (model, constant-args,
  /// device) combinations the process serves.
  struct Group {
    std::deque<Request*> queue;
    bool has_leader = false;
    std::condition_variable cv;
  };

  /// Claims a FIFO-prefix batch for `group` (caller holds `mu_`), runs the
  /// forward with `mu_` released, fulfills every claimed request, and
  /// releases leadership. `target_rows` caps the coalesced batch.
  void LeadBatch(Group& group, const udf::ScalarFunction& fn, Device device,
                 int64_t target_rows, std::unique_lock<std::mutex>& lock);

  const Options options_;

  mutable std::mutex mu_;
  std::unordered_map<std::string, Group> groups_;
  /// CallScalar invocations currently in flight (coalescable path): > 1
  /// means co-arrivals are possible and a leader should pay the window.
  int64_t active_calls_ = 0;
  Stats stats_;
};

}  // namespace runtime
}  // namespace tdp

#endif  // TDP_RUNTIME_INFERENCE_SCHEDULER_H_
