#ifndef TDP_RUNTIME_SESSION_H_
#define TDP_RUNTIME_SESSION_H_

#include <memory>
#include <string>

#include "src/common/statusor.h"
#include "src/exec/compiled_query.h"
#include "src/storage/catalog.h"
#include "src/udf/registry.h"

namespace tdp {

/// Compilation options — the paper's `extra_config` (Listing 6) plus the
/// target device (Listing 2).
struct QueryOptions {
  Device device = Device::kAccel;
  /// Compile an end-to-end differentiable plan (soft operators over PE
  /// columns); enables training the query with gradient descent.
  bool trainable = false;
};

/// Top-level TDP handle — the C++ analogue of the paper's `tdp` module:
/// registration APIs (`tdp.sql.register_df` et al.), the UDF/TVF
/// annotation registry, and query compilation (`tdp.sql.spark.query`).
class Session {
 public:
  Session();

  Session(const Session&) = delete;
  Session& operator=(const Session&) = delete;

  // ---- Data ingestion --------------------------------------------------

  /// Registers `table` under `name`, replacing any previous registration
  /// (training loops re-register inputs each iteration). Data is moved to
  /// `device`.
  Status RegisterTable(const std::string& name, std::shared_ptr<Table> table,
                       Device device = Device::kCpu);

  /// Registers a single-column table holding one tensor (the paper's
  /// `register_tensor`), column name "value".
  Status RegisterTensor(const std::string& name, Tensor tensor,
                        Device device = Device::kCpu);

  // ---- Functions --------------------------------------------------------

  udf::FunctionRegistry& functions() { return *registry_; }

  // ---- Queries ----------------------------------------------------------

  /// Parses, binds, optimizes and compiles `sql` into a tensor program.
  StatusOr<std::shared_ptr<exec::CompiledQuery>> Query(
      const std::string& sql, const QueryOptions& options = {});

  /// One-shot convenience: compile + run.
  StatusOr<std::shared_ptr<Table>> Sql(const std::string& sql,
                                       const QueryOptions& options = {});

  /// EXPLAIN: the optimized plan for `sql`.
  StatusOr<std::string> Explain(const std::string& sql,
                                const QueryOptions& options = {});

  const Catalog& catalog() const { return *catalog_; }
  Catalog& catalog() { return *catalog_; }

 private:
  std::shared_ptr<Catalog> catalog_;
  std::unique_ptr<udf::FunctionRegistry> registry_;
};

}  // namespace tdp

#endif  // TDP_RUNTIME_SESSION_H_
