#ifndef TDP_RUNTIME_SESSION_H_
#define TDP_RUNTIME_SESSION_H_

#include <cstdint>
#include <list>
#include <memory>
#include <mutex>
#include <string>
#include <unordered_map>
#include <utility>
#include <vector>

#include "src/common/statusor.h"
#include "src/exec/compiled_query.h"
#include "src/storage/catalog.h"
#include "src/udf/registry.h"

namespace tdp {

/// Compilation options — the paper's `extra_config` (Listing 6) plus the
/// target device (Listing 2). Everything here is plan state (part of the
/// plan-cache key); per-run knobs — parameters, executor/morsel selection,
/// training-mode override, cancellation — live in `exec::RunOptions`
/// instead, so clients with conflicting run options share one cached plan.
struct QueryOptions {
  Device device = Device::kAccel;
  /// Compile an end-to-end differentiable plan (soft operators over PE
  /// columns); enables training the query with gradient descent.
  bool trainable = false;
  /// When false, `Prepare`/`Sql` always compile fresh instead of consulting
  /// the session plan cache. (Trainable queries are never cached: they
  /// carry mutable module state.)
  bool use_plan_cache = true;
};

/// Cumulative plan-cache counters (see `Session::plan_cache_stats`).
struct PlanCacheStats {
  uint64_t hits = 0;
  uint64_t misses = 0;     // compile because no (fresh) entry existed
  uint64_t evictions = 0;  // LRU capacity evictions
  uint64_t invalidations = 0;  // entries dropped as schema-epoch stale
  size_t size = 0;
  size_t capacity = 0;
};

/// Top-level TDP handle — the C++ analogue of the paper's `tdp` module:
/// registration APIs (`tdp.sql.register_df` et al.), the UDF/TVF
/// annotation registry, and query compilation (`tdp.sql.spark.query`).
///
/// Thread safety (the serving contract):
///   - `Sql`, `Prepare`, `Query`, `Explain`, and `RegisterTable`/
///     `RegisterTensor` may be called from any number of threads
///     concurrently. Queries bind against an immutable catalog snapshot;
///     registrations swap in a new snapshot (copy-on-write) and are
///     observed by subsequent runs, never by runs already in flight.
///   - `Prepare` returns shared `CompiledQuery` instances from an LRU plan
///     cache keyed on normalized SQL text + compilation options, skipping
///     lex/parse/bind/optimize on repeat statements. Invalidation is
///     PER-TABLE: an entry records the schema epoch of every table its
///     plan touches and is dropped only when one of those epochs moves.
///     DDL (register/drop table, create/drop vector index) bumps the
///     affected table's epoch; DML does not — an INSERT into `t` evicts
///     nothing, not even plans over `t` (they re-resolve the table from a
///     fresh snapshot at every run).
///   - DML statements (`CREATE TABLE` / `INSERT` / `UPDATE` / `DELETE`)
///     run through the same `Sql`/`Prepare` path and return a one-row
///     `rows_affected` table. Concurrent writers to the SAME table
///     serialize optimistically: the loser of a write-write race gets a
///     retryable ExecutionError (same contract as a registration racing a
///     query) and simply re-runs its statement; writers to different
///     tables never conflict.
///   - UDFs/TVFs must be registered via `functions()` before concurrent
///     serving starts; the function registry itself is not synchronized.
class Session {
 public:
  Session();

  Session(const Session&) = delete;
  Session& operator=(const Session&) = delete;

  // ---- Data ingestion --------------------------------------------------

  /// Registers `table` under `name`, replacing any previous registration
  /// (training loops re-register inputs each iteration). Data is moved to
  /// `device`.
  Status RegisterTable(const std::string& name, std::shared_ptr<Table> table,
                       Device device = Device::kCpu);

  /// Registers a single-column table holding one tensor (the paper's
  /// `register_tensor`), column name "value".
  Status RegisterTensor(const std::string& name, Tensor tensor,
                        Device device = Device::kCpu);

  // ---- Vector indexes ----------------------------------------------------

  /// Builds an IVF index over the rank-2 tensor column `table`.`column`
  /// (the paper's §5.1 future work: approximate indexing for top-k
  /// queries). Once installed, `ORDER BY dot(column, ?) DESC LIMIT k` (and
  /// `cosine_sim`) — optionally under a WHERE predicate — compiles to the
  /// IndexTopK/FilteredIndexTopK operator instead of a full Sort;
  /// `exec::RunOptions::vector_search` trades recall for speed and forces
  /// filtered-search strategies per run (the default probes every cell —
  /// exact results). Re-registering the
  /// table invalidates the index: affected queries fall back to the exact
  /// Sort+Limit plan until the index is rebuilt. Fails with ExecutionError
  /// if a re-registration races the build (retry over the new data).
  Status CreateVectorIndex(const std::string& table,
                           const std::string& column,
                           const index::IvfIndex::Options& options = {},
                           uint64_t seed = kDefaultVectorIndexSeed);

  Status DropVectorIndex(const std::string& table, const std::string& column);

  // ---- Functions --------------------------------------------------------

  udf::FunctionRegistry& functions() { return *registry_; }

  // ---- Queries ----------------------------------------------------------

  /// Parses, binds, optimizes and compiles `sql` into a tensor program.
  /// Always compiles fresh (no cache); use `Prepare` on hot serving paths.
  StatusOr<std::shared_ptr<exec::CompiledQuery>> Query(
      const std::string& sql, const QueryOptions& options = {});

  /// Cached compilation: returns the shared `CompiledQuery` for `sql` from
  /// the plan cache, compiling (and inserting) on miss. The returned query
  /// may be `Run(params)` by many threads concurrently. `?` placeholders
  /// make one cached plan serve a whole family of point queries.
  StatusOr<std::shared_ptr<exec::CompiledQuery>> Prepare(
      const std::string& sql, const QueryOptions& options = {});

  /// THE one-shot entry point: compile (through the plan cache) + run.
  /// All per-run state — `?` parameter bindings, executor/morsel
  /// selection, vector-search knobs, cancellation, training-mode
  /// override — travels in `run` (`exec::RunOptions`); there is no
  /// separate params overload. `Prepare` + `Run` is the same thing split
  /// for hot serving paths.
  StatusOr<std::shared_ptr<Table>> Sql(const std::string& sql,
                                       const QueryOptions& options = {},
                                       const exec::RunOptions& run = {});

  /// Streaming execution: compile `sql` through the plan cache and open a
  /// `ResultCursor` whose `Next()` yields result chunks incrementally
  /// (bounded queue, backpressure, cooperative cancellation on close) —
  /// time-to-first-chunk is ~one morsel of work, not the full result.
  StatusOr<std::unique_ptr<exec::ResultCursor>> Execute(
      const std::string& sql, const QueryOptions& options = {},
      exec::RunOptions run = {});

  /// EXPLAIN: the optimized plan for `sql`. Reads through the plan cache
  /// without perturbing it (no insert, no LRU reorder, no stats change):
  /// ad-hoc EXPLAINs must never evict hot serving plans.
  StatusOr<std::string> Explain(const std::string& sql,
                                const QueryOptions& options = {});

  // ---- Catalog / cache introspection ------------------------------------

  SharedCatalog& catalog() { return *catalog_; }
  const SharedCatalog& catalog() const { return *catalog_; }

  PlanCacheStats plan_cache_stats() const;

  /// Resizes the plan cache (default 128 plans); 0 disables caching.
  void set_plan_cache_capacity(size_t capacity);

 private:
  struct CacheEntry {
    std::string key;
    std::shared_ptr<exec::CompiledQuery> query;
    /// (lowercased table name, schema epoch at compile): the entry is
    /// fresh iff every recorded epoch is unchanged. Epochs move on DDL
    /// only, so DML over one table leaves every cached plan — including
    /// plans over that same table — valid.
    std::vector<std::pair<std::string, uint64_t>> deps;
  };

  std::shared_ptr<SharedCatalog> catalog_;
  std::unique_ptr<udf::FunctionRegistry> registry_;

  // LRU plan cache: most-recently-used at the front of the list; the map
  // indexes entries by cache key. All cache state is guarded by mu_.
  mutable std::mutex mu_;
  std::list<CacheEntry> lru_;
  std::unordered_map<std::string, std::list<CacheEntry>::iterator> index_;
  size_t capacity_ = 128;
  PlanCacheStats stats_;
};

}  // namespace tdp

#endif  // TDP_RUNTIME_SESSION_H_
