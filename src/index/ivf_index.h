#ifndef TDP_INDEX_IVF_INDEX_H_
#define TDP_INDEX_IVF_INDEX_H_

#include <vector>

#include "src/common/rng.h"
#include "src/common/statusor.h"
#include "src/tensor/tensor.h"

namespace tdp {
namespace index {

/// IVF (inverted-file) approximate nearest-neighbor index over an
/// embedding column — the paper's stated future work ("we are currently
/// integrating approximate indexing [Milvus] into TDP for speeding up
/// top-k queries", §5.1).
///
/// Build: k-means over the [n, d] embedding rows partitions them into
/// `num_lists` cells. Search: score the query against the centroids,
/// visit only the `num_probes` closest cells, and rank their members
/// exactly. With num_probes == num_lists the search is exact; fewer
/// probes trade recall for time (the ablation_topk_index bench sweeps
/// this).
class IvfIndex {
 public:
  struct Options {
    int64_t num_lists = 16;
    int64_t kmeans_iterations = 10;
  };

  /// Builds over `embeddings` [n, d] (rows should be L2-normalized for
  /// inner-product search). The index snapshots the data.
  static StatusOr<IvfIndex> Build(const Tensor& embeddings,
                                  const Options& options, Rng& rng);

  struct SearchResult {
    Tensor indices;  // [k] kInt64 row ids, best first
    Tensor scores;   // [k] float32 inner products
  };

  /// Approximate top-k by inner product with `query` [d].
  StatusOr<SearchResult> Search(const Tensor& query, int64_t k,
                                int64_t num_probes) const;

  int64_t num_lists() const { return centroids_.size(0); }
  int64_t num_rows() const { return data_.size(0); }

  /// Fraction of rows scanned for a given probe count (cost model).
  double ScanFraction(int64_t num_probes) const;

 private:
  IvfIndex() = default;

  Tensor data_;       // [n, d] snapshot
  Tensor centroids_;  // [lists, d]
  std::vector<std::vector<int64_t>> lists_;  // row ids per cell
};

}  // namespace index
}  // namespace tdp

#endif  // TDP_INDEX_IVF_INDEX_H_
