#ifndef TDP_INDEX_IVF_INDEX_H_
#define TDP_INDEX_IVF_INDEX_H_

#include <cstdint>
#include <vector>

#include "src/common/rng.h"
#include "src/common/statusor.h"
#include "src/tensor/tensor.h"

namespace tdp {
namespace index {

/// IVF (inverted-file) approximate nearest-neighbor index over an
/// embedding column — the paper's stated future work ("we are currently
/// integrating approximate indexing [Milvus] into TDP for speeding up
/// top-k queries", §5.1).
///
/// Build: k-means over the [n, d] embedding rows partitions them into
/// `num_lists` cells. Search: score the query against the centroids,
/// visit only the `num_probes` closest cells, and rank their members
/// exactly. With num_probes == num_lists the search is exact; fewer
/// probes trade recall for time (the ablation_topk_index bench sweeps
/// this).
class IvfIndex {
 public:
  struct Options {
    int64_t num_lists = 16;
    int64_t kmeans_iterations = 10;
  };

  /// Builds over `embeddings` [n, d] (rows should be L2-normalized for
  /// inner-product search). The index snapshots the data.
  static StatusOr<IvfIndex> Build(const Tensor& embeddings,
                                  const Options& options, Rng& rng);

  struct SearchResult {
    Tensor indices;  // [k] kInt64 row ids, best first
    Tensor scores;   // [k] float32 inner products
  };

  /// Approximate top-k by inner product with `query` (any shape with
  /// exactly d elements). `k == 0` yields an empty result; `k < 0` and
  /// `num_probes <= 0` are InvalidArgument; `k > num_rows()` and
  /// `num_probes > num_lists()` clamp. Ties break toward lower row ids
  /// (candidates are scored in ascending row order under a stable sort),
  /// matching the engine's stable ORDER BY.
  StatusOr<SearchResult> Search(const Tensor& query, int64_t k,
                                int64_t num_probes) const;

  /// Derives a new index over this index's rows plus `new_rows` ([m, d]):
  /// each appended row joins the cell of its nearest existing centroid —
  /// no re-clustering, so an INSERT costs O(m · lists) instead of a full
  /// k-means rebuild. Existing row ids are unchanged; appended rows get
  /// ids [num_rows(), num_rows() + m). Recall degrades gracefully as the
  /// appended fraction grows (centroids drift from the true means);
  /// rebuilding re-clusters.
  StatusOr<IvfIndex> WithAppended(const Tensor& new_rows) const;

  /// Candidate generation for the SQL `IndexTopK` operator: the member
  /// rows of the `num_probes` highest-scoring NON-EMPTY cells (k-means can
  /// leave cells empty; probing those would waste the probe budget and, at
  /// full probe count, break the all-rows guarantee). The budget is a
  /// FLOOR, not a cap on the result: when the probed cells hold fewer than
  /// `min_candidates` rows, further cells are probed (best first) until
  /// enough exist or every cell is visited — so a top-k over a tiny cell
  /// still returns k rows, with recall (not row count) absorbing the
  /// approximation. Returned ascending. With `num_probes >= num_lists`
  /// this is exactly [0, num_rows) — the caller's exact re-rank then
  /// degenerates to brute force, which is what makes full-probe index
  /// plans bit-identical to the Sort+Limit plan.
  ///
  /// `selection` (optional; one byte per index row, non-zero = selected)
  /// restricts the probe to a pre-filtered row set: only selected members
  /// are collected, cells with NO selected member are skipped without
  /// consuming probe budget (like empty cells), and the `min_candidates`
  /// floor counts selected rows only — so a filtered top-k keeps its
  /// survivor floor no matter how the survivors cluster. With full probes
  /// the result is exactly the ascending selected row ids. This is the
  /// pre-filter strategy's probe (see exec::VectorSearchStrategy).
  StatusOr<std::vector<int64_t>> ProbeCandidates(
      const Tensor& query, int64_t num_probes, int64_t min_candidates = 0,
      const std::vector<uint8_t>* selection = nullptr) const;

  int64_t num_lists() const { return centroids_.size(0); }
  int64_t num_rows() const { return data_.size(0); }

  /// True when every indexed row is (approximately) L2-normalized.
  /// Probing ranks cells by raw inner product against the centroids; for
  /// COSINE queries that ordering is only trustworthy on unit-norm rows
  /// (a small-norm row can be the true cosine top-1 yet live in a cell
  /// the dot-ordered probe never reaches), so the IndexTopK operator
  /// probes every cell — exact results — when this is false.
  bool rows_unit_norm() const { return rows_unit_norm_; }

  /// Fraction of rows scanned for a given probe count (cost model).
  double ScanFraction(int64_t num_probes) const;

 private:
  IvfIndex() = default;

  /// Validates the query's element count and converts it once to the
  /// [d, 1] float32 column matrix both probing and scoring multiply by.
  StatusOr<Tensor> PrepareQuery(const Tensor& query) const;

  /// ProbeCandidates over an already-prepared query (no re-validation or
  /// re-conversion; `num_probes` must be in [1, num_lists]; `selection`
  /// null or sized num_rows()).
  std::vector<int64_t> ProbePrepared(
      const Tensor& q, int64_t num_probes, int64_t min_candidates,
      const std::vector<uint8_t>* selection = nullptr) const;

  Tensor data_;       // [n, d] snapshot
  Tensor centroids_;  // [lists, d]
  std::vector<std::vector<int64_t>> lists_;  // row ids per cell
  bool rows_unit_norm_ = false;
};

}  // namespace index
}  // namespace tdp

#endif  // TDP_INDEX_IVF_INDEX_H_
