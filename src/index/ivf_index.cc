#include "src/index/ivf_index.h"

#include <algorithm>
#include <numeric>

#include "src/common/logging.h"
#include "src/tensor/ops.h"

namespace tdp {
namespace index {

StatusOr<IvfIndex> IvfIndex::Build(const Tensor& embeddings,
                                   const Options& options, Rng& rng) {
  if (!embeddings.defined() || embeddings.dim() != 2) {
    return Status::InvalidArgument("IVF index needs a [n, d] tensor");
  }
  if (!IsFloatingPoint(embeddings.dtype())) {
    return Status::TypeError("IVF index needs float embeddings");
  }
  const int64_t n = embeddings.size(0);
  const int64_t lists = std::min(options.num_lists, n);
  if (n == 0 || lists <= 0) {
    return Status::InvalidArgument("IVF index needs data and >= 1 list");
  }

  IvfIndex index;
  index.data_ =
      embeddings.Detach().Contiguous().To(DType::kFloat32);

  // Record whether rows are unit-norm (see rows_unit_norm()): cosine
  // queries may only probe a SUBSET of cells when they are.
  const Tensor norms = Sqrt(
      Sum(Mul(index.data_, index.data_), /*dim=*/1, /*keepdim=*/false));
  const Tensor ones = Tensor::Full({1}, 1.0f, DType::kFloat32,
                                   index.data_.device());
  index.rows_unit_norm_ =
      MaxAll(Abs(Sub(norms, ones))).item<float>() < 1e-3f;

  // k-means++ -lite init: random distinct rows as seed centroids.
  const std::vector<int64_t> perm = rng.Permutation(n);
  std::vector<int64_t> seeds(perm.begin(), perm.begin() + lists);
  Tensor centroids = IndexSelect(
      index.data_, 0, Tensor::FromVector(seeds, {}, index.data_.device()));

  std::vector<int64_t> assignment(static_cast<size_t>(n), 0);
  for (int64_t iter = 0; iter < options.kmeans_iterations; ++iter) {
    // Assign: nearest centroid by inner product (normalized rows).
    const Tensor scores =
        MatMul(index.data_, Transpose(centroids, 0, 1));  // [n, lists]
    const Tensor best = ArgMax(scores, 1, false);
    const std::vector<int64_t> new_assignment = best.ToVector<int64_t>();
    if (new_assignment == assignment && iter > 0) break;
    assignment = new_assignment;

    // Update: mean of members (empty cells keep their centroid).
    const Device device = index.data_.device();
    Tensor sums = Tensor::Zeros({lists, index.data_.size(1)},
                                DType::kFloat32, device);
    Tensor counts = Tensor::Zeros({lists, 1}, DType::kFloat32, device);
    sums = ScatterAddRows(sums, best.To(device), index.data_);
    float* cp = counts.data<float>();
    for (int64_t i = 0; i < n; ++i) {
      cp[assignment[static_cast<size_t>(i)]] += 1.0f;
    }
    const Tensor one = Tensor::Full({1}, 1.0f, DType::kFloat32, device);
    const Tensor zero = Tensor::Full({1}, 0.0f, DType::kFloat32, device);
    const Tensor safe_counts = Maximum(counts, one);
    Tensor updated = Div(sums, safe_counts);
    // Keep old centroids where a cell is empty.
    const Tensor empty = Le(counts, zero);
    centroids = Where(empty, centroids, updated);
  }

  index.centroids_ = centroids.Contiguous();
  index.lists_.assign(static_cast<size_t>(lists), {});
  for (int64_t i = 0; i < n; ++i) {
    index.lists_[static_cast<size_t>(assignment[static_cast<size_t>(i)])]
        .push_back(i);
  }
  return index;
}

StatusOr<IvfIndex> IvfIndex::WithAppended(const Tensor& new_rows) const {
  if (!new_rows.defined() || new_rows.dim() != 2 ||
      new_rows.size(1) != data_.size(1)) {
    return Status::InvalidArgument(
        "appended rows must be [m, " + std::to_string(data_.size(1)) + "]");
  }
  if (!IsFloatingPoint(new_rows.dtype())) {
    return Status::TypeError("IVF index needs float embeddings");
  }
  const Tensor rows = new_rows.Detach()
                          .Contiguous()
                          .To(DType::kFloat32)
                          .To(data_.device());
  const int64_t m = rows.size(0);
  if (m == 0) return Status::InvalidArgument("no rows to append");

  IvfIndex index;
  index.data_ = Cat({data_, rows}, 0);
  index.centroids_ = centroids_;
  index.lists_ = lists_;

  const Tensor norms =
      Sqrt(Sum(Mul(rows, rows), /*dim=*/1, /*keepdim=*/false));
  const Tensor ones =
      Tensor::Full({1}, 1.0f, DType::kFloat32, rows.device());
  index.rows_unit_norm_ =
      rows_unit_norm_ && MaxAll(Abs(Sub(norms, ones))).item<float>() < 1e-3f;

  // Nearest existing centroid by inner product, exactly like the k-means
  // assign step.
  const Tensor scores = MatMul(rows, Transpose(centroids_, 0, 1));
  const std::vector<int64_t> assignment =
      ArgMax(scores, 1, false).ToVector<int64_t>();
  const int64_t base = num_rows();
  for (int64_t i = 0; i < m; ++i) {
    index.lists_[static_cast<size_t>(assignment[static_cast<size_t>(i)])]
        .push_back(base + i);
  }
  return index;
}

StatusOr<Tensor> IvfIndex::PrepareQuery(const Tensor& query) const {
  if (!query.defined() || query.numel() != data_.size(1)) {
    return Status::InvalidArgument(
        "query dimension mismatch: index has d=" +
        std::to_string(data_.size(1)) + ", query has " +
        std::to_string(query.defined() ? query.numel() : 0) + " element(s)");
  }
  return Reshape(query.Detach().To(DType::kFloat32).To(data_.device()),
                 {data_.size(1), 1});
}

std::vector<int64_t> IvfIndex::ProbePrepared(
    const Tensor& q, int64_t num_probes, int64_t min_candidates,
    const std::vector<uint8_t>* selection) const {
  // Rank cells by centroid score; visit the top `num_probes` non-empty
  // ones (empty cells left over from k-means are skipped, never counted
  // against the probe budget), then keep probing — best cell first —
  // while fewer than `min_candidates` rows were collected: the budget
  // dials recall, never the result's row count. A selection bitmap
  // narrows "member" to "selected member": a cell whose members are all
  // pruned is as useless as an empty one, so it costs no budget either.
  const Tensor cell_scores = Squeeze(MatMul(centroids_, q), 1);
  const Tensor cell_order = ArgSort(cell_scores, /*descending=*/true);
  std::vector<int64_t> candidates;
  int64_t probed = 0;
  for (int64_t p = 0; p < num_lists(); ++p) {
    if (probed >= num_probes &&
        static_cast<int64_t>(candidates.size()) >= min_candidates) {
      break;
    }
    const int64_t cell = static_cast<int64_t>(cell_order.At({p}));
    const auto& members = lists_[static_cast<size_t>(cell)];
    const size_t before = candidates.size();
    if (selection == nullptr) {
      candidates.insert(candidates.end(), members.begin(), members.end());
    } else {
      for (int64_t id : members) {
        if ((*selection)[static_cast<size_t>(id)]) candidates.push_back(id);
      }
    }
    if (candidates.size() == before) continue;  // empty / fully pruned
    ++probed;
  }
  std::sort(candidates.begin(), candidates.end());
  return candidates;
}

StatusOr<std::vector<int64_t>> IvfIndex::ProbeCandidates(
    const Tensor& query, int64_t num_probes, int64_t min_candidates,
    const std::vector<uint8_t>* selection) const {
  if (num_probes <= 0) {
    return Status::InvalidArgument("num_probes must be positive, got " +
                                   std::to_string(num_probes));
  }
  if (selection != nullptr &&
      static_cast<int64_t>(selection->size()) != num_rows()) {
    return Status::InvalidArgument(
        "selection bitmap has " + std::to_string(selection->size()) +
        " entries, index has " + std::to_string(num_rows()) + " rows");
  }
  TDP_ASSIGN_OR_RETURN(Tensor q, PrepareQuery(query));
  return ProbePrepared(q, std::min(num_probes, num_lists()), min_candidates,
                       selection);
}

StatusOr<IvfIndex::SearchResult> IvfIndex::Search(const Tensor& query,
                                                  int64_t k,
                                                  int64_t num_probes) const {
  if (k < 0) {
    return Status::InvalidArgument("k must be non-negative, got " +
                                   std::to_string(k));
  }
  if (num_probes <= 0) {
    return Status::InvalidArgument("num_probes must be positive, got " +
                                   std::to_string(num_probes));
  }
  TDP_ASSIGN_OR_RETURN(Tensor q, PrepareQuery(query));
  const std::vector<int64_t> candidates =
      ProbePrepared(q, std::min(num_probes, num_lists()),
                    /*min_candidates=*/k);
  if (k == 0 || candidates.empty()) {
    return SearchResult{Tensor::Empty({0}, DType::kInt64),
                        Tensor::Empty({0}, DType::kFloat32)};
  }

  // Exact scoring of the candidate set; candidates are in ascending row
  // order, so the stable descending sort breaks ties toward lower row ids
  // — the same tie order a stable ORDER BY over the full relation yields.
  const Tensor cand_ids =
      Tensor::FromVector(candidates, {}, data_.device());
  const Tensor cand_rows = IndexSelect(data_, 0, cand_ids);
  const Tensor scores = Squeeze(MatMul(cand_rows, q), 1);
  const Tensor order = ArgSort(scores, /*descending=*/true);
  const int64_t out_k = std::min<int64_t>(k, scores.numel());
  const Tensor top = Slice(order, 0, 0, out_k).Contiguous();

  SearchResult result;
  result.indices = IndexSelect(cand_ids, 0, top);
  result.scores = IndexSelect(scores, 0, top).To(DType::kFloat32);
  return result;
}

double IvfIndex::ScanFraction(int64_t num_probes) const {
  num_probes = std::clamp<int64_t>(num_probes, 1, num_lists());
  // Average over cells visited assuming uniform query distribution: use
  // actual list sizes of the largest `num_probes` cells as a bound.
  std::vector<size_t> sizes;
  sizes.reserve(lists_.size());
  for (const auto& list : lists_) sizes.push_back(list.size());
  std::sort(sizes.rbegin(), sizes.rend());
  size_t scanned = 0;
  for (int64_t p = 0; p < num_probes; ++p) {
    scanned += sizes[static_cast<size_t>(p)];
  }
  return static_cast<double>(scanned) /
         static_cast<double>(std::max<int64_t>(num_rows(), 1));
}

}  // namespace index
}  // namespace tdp
