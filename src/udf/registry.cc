#include "src/udf/registry.h"

#include "src/common/string_util.h"

namespace tdp {
namespace udf {

bool IsBuiltinAggregateName(const std::string& lower_name) {
  return lower_name == "count" || lower_name == "sum" ||
         lower_name == "avg" || lower_name == "min" || lower_name == "max";
}

bool IsBuiltinVectorSimName(const std::string& lower_name) {
  return lower_name == "dot" || lower_name == "cosine_sim";
}

namespace {

// Built-in names resolve in the binder before the registry; registering a
// UDF under one would be silently shadowed, so it fails loudly here.
Status CheckNotReserved(const std::string& key, const std::string& name) {
  if (IsBuiltinAggregateName(key) || IsBuiltinVectorSimName(key)) {
    return Status::InvalidArgument(
        "'" + name + "' is a reserved built-in function name");
  }
  return Status::OK();
}

}  // namespace

Status FunctionRegistry::RegisterScalar(ScalarFunction fn) {
  if (fn.name.empty() || !fn.fn) {
    return Status::InvalidArgument("scalar UDF needs a name and a body");
  }
  const std::string key = ToLower(fn.name);
  TDP_RETURN_NOT_OK(CheckNotReserved(key, fn.name));
  if (scalar_fns_.contains(key) || table_fns_.contains(key)) {
    return Status::AlreadyExists("function already registered: " + fn.name);
  }
  scalar_fns_.emplace(key, std::move(fn));
  return Status::OK();
}

Status FunctionRegistry::RegisterTable(TableFunction fn) {
  if (fn.name.empty() || !fn.fn) {
    return Status::InvalidArgument("TVF needs a name and a body");
  }
  if (fn.output_schema.empty()) {
    return Status::InvalidArgument(
        "TVF must declare its output schema (tdp_udf annotation)");
  }
  const std::string key = ToLower(fn.name);
  TDP_RETURN_NOT_OK(CheckNotReserved(key, fn.name));
  if (scalar_fns_.contains(key) || table_fns_.contains(key)) {
    return Status::AlreadyExists("function already registered: " + fn.name);
  }
  table_fns_.emplace(key, std::move(fn));
  return Status::OK();
}

const ScalarFunction* FunctionRegistry::FindScalar(
    const std::string& name) const {
  const auto it = scalar_fns_.find(ToLower(name));
  return it == scalar_fns_.end() ? nullptr : &it->second;
}

const TableFunction* FunctionRegistry::FindTable(
    const std::string& name) const {
  const auto it = table_fns_.find(ToLower(name));
  return it == table_fns_.end() ? nullptr : &it->second;
}

std::vector<std::string> FunctionRegistry::ListFunctions() const {
  std::vector<std::string> names;
  for (const auto& [key, unused] : scalar_fns_) names.push_back(key);
  for (const auto& [key, unused] : table_fns_) names.push_back(key);
  return names;
}

}  // namespace udf
}  // namespace tdp
