#include "src/udf/registry.h"

#include "src/common/string_util.h"

namespace tdp {
namespace udf {

std::string DeclaredTypeName(DeclaredType type) {
  switch (type) {
    case DeclaredType::kFloat:
      return "float";
    case DeclaredType::kInt:
      return "int";
    case DeclaredType::kString:
      return "string";
    case DeclaredType::kBool:
      return "bool";
    case DeclaredType::kTensor:
      return "tensor";
    case DeclaredType::kProbability:
      return "probability";
  }
  return "?";
}

std::string TvfSignature(const TableFunction& fn) {
  std::string sig = fn.name + "(<input rows>";
  const size_t shown =
      fn.max_args < 0 ? fn.param_names.size()
                      : static_cast<size_t>(fn.max_args);
  for (size_t i = 0; i < shown; ++i) {
    sig += ", ";
    sig += i < fn.param_names.size() ? fn.param_names[i]
                                     : "arg" + std::to_string(i + 1);
    if (fn.max_args < 0 || static_cast<int>(i) >= fn.min_args) sig += "?";
  }
  if (fn.max_args < 0) sig += ", ...";
  sig += ") -> (";
  for (size_t i = 0; i < fn.output_schema.size(); ++i) {
    if (i > 0) sig += ", ";
    sig += fn.output_schema[i].name + " " +
           DeclaredTypeName(fn.output_schema[i].type);
  }
  sig += ")";
  return sig;
}

Status CheckTvfArity(const TableFunction& fn, size_t num_args) {
  const int n = static_cast<int>(num_args);
  if (n < fn.min_args || (fn.max_args >= 0 && n > fn.max_args)) {
    std::string expected;
    if (fn.max_args < 0) {
      expected = "at least " + std::to_string(fn.min_args);
    } else if (fn.min_args == fn.max_args) {
      expected = std::to_string(fn.min_args);
    } else {
      expected = "between " + std::to_string(fn.min_args) + " and " +
                 std::to_string(fn.max_args);
    }
    return Status::BindError(
        "table function " + fn.name + " expects " + expected +
        " argument(s), got " + std::to_string(num_args) +
        "; signature: " + TvfSignature(fn));
  }
  return Status::OK();
}

bool IsBuiltinAggregateName(const std::string& lower_name) {
  return lower_name == "count" || lower_name == "sum" ||
         lower_name == "avg" || lower_name == "min" || lower_name == "max";
}

bool IsBuiltinVectorSimName(const std::string& lower_name) {
  return lower_name == "dot" || lower_name == "cosine_sim";
}

namespace {

// Built-in names resolve in the binder before the registry; registering a
// UDF under one would be silently shadowed, so it fails loudly here.
Status CheckNotReserved(const std::string& key, const std::string& name) {
  if (IsBuiltinAggregateName(key) || IsBuiltinVectorSimName(key)) {
    return Status::InvalidArgument(
        "'" + name + "' is a reserved built-in function name");
  }
  return Status::OK();
}

}  // namespace

Status FunctionRegistry::RegisterScalar(ScalarFunction fn) {
  if (fn.name.empty() || !fn.fn) {
    return Status::InvalidArgument("scalar UDF needs a name and a body");
  }
  const std::string key = ToLower(fn.name);
  TDP_RETURN_NOT_OK(CheckNotReserved(key, fn.name));
  if (scalar_fns_.contains(key) || table_fns_.contains(key)) {
    return Status::AlreadyExists("function already registered: " + fn.name);
  }
  scalar_fns_.emplace(key, std::move(fn));
  return Status::OK();
}

Status FunctionRegistry::RegisterTable(TableFunction fn) {
  if (fn.name.empty() || !fn.fn) {
    return Status::InvalidArgument("TVF needs a name and a body");
  }
  if (fn.output_schema.empty()) {
    return Status::InvalidArgument(
        "TVF must declare its output schema (tdp_udf annotation)");
  }
  const std::string key = ToLower(fn.name);
  TDP_RETURN_NOT_OK(CheckNotReserved(key, fn.name));
  if (scalar_fns_.contains(key) || table_fns_.contains(key)) {
    return Status::AlreadyExists("function already registered: " + fn.name);
  }
  table_fns_.emplace(key, std::move(fn));
  return Status::OK();
}

const ScalarFunction* FunctionRegistry::FindScalar(
    const std::string& name) const {
  const auto it = scalar_fns_.find(ToLower(name));
  return it == scalar_fns_.end() ? nullptr : &it->second;
}

const TableFunction* FunctionRegistry::FindTable(
    const std::string& name) const {
  const auto it = table_fns_.find(ToLower(name));
  return it == table_fns_.end() ? nullptr : &it->second;
}

std::vector<std::string> FunctionRegistry::ListFunctions() const {
  std::vector<std::string> names;
  for (const auto& [key, unused] : scalar_fns_) names.push_back(key);
  for (const auto& [key, unused] : table_fns_) names.push_back(key);
  return names;
}

}  // namespace udf
}  // namespace tdp
