#include "src/udf/registry.h"

#include "src/common/string_util.h"

namespace tdp {
namespace udf {

Status FunctionRegistry::RegisterScalar(ScalarFunction fn) {
  if (fn.name.empty() || !fn.fn) {
    return Status::InvalidArgument("scalar UDF needs a name and a body");
  }
  const std::string key = ToLower(fn.name);
  if (scalar_fns_.contains(key) || table_fns_.contains(key)) {
    return Status::AlreadyExists("function already registered: " + fn.name);
  }
  scalar_fns_.emplace(key, std::move(fn));
  return Status::OK();
}

Status FunctionRegistry::RegisterTable(TableFunction fn) {
  if (fn.name.empty() || !fn.fn) {
    return Status::InvalidArgument("TVF needs a name and a body");
  }
  if (fn.output_schema.empty()) {
    return Status::InvalidArgument(
        "TVF must declare its output schema (tdp_udf annotation)");
  }
  const std::string key = ToLower(fn.name);
  if (scalar_fns_.contains(key) || table_fns_.contains(key)) {
    return Status::AlreadyExists("function already registered: " + fn.name);
  }
  table_fns_.emplace(key, std::move(fn));
  return Status::OK();
}

const ScalarFunction* FunctionRegistry::FindScalar(
    const std::string& name) const {
  const auto it = scalar_fns_.find(ToLower(name));
  return it == scalar_fns_.end() ? nullptr : &it->second;
}

const TableFunction* FunctionRegistry::FindTable(
    const std::string& name) const {
  const auto it = table_fns_.find(ToLower(name));
  return it == table_fns_.end() ? nullptr : &it->second;
}

std::vector<std::string> FunctionRegistry::ListFunctions() const {
  std::vector<std::string> names;
  for (const auto& [key, unused] : scalar_fns_) names.push_back(key);
  for (const auto& [key, unused] : table_fns_) names.push_back(key);
  return names;
}

}  // namespace udf
}  // namespace tdp
