#ifndef TDP_UDF_REGISTRY_H_
#define TDP_UDF_REGISTRY_H_

#include <functional>
#include <map>
#include <memory>
#include <string>
#include <vector>

#include "src/common/statusor.h"
#include "src/exec/chunk.h"
#include "src/exec/value.h"
#include "src/nn/module.h"

namespace tdp {
namespace udf {

/// Declared column type of a UDF/TVF output (the paper's annotation
/// `@tdp_udf("Digit float, Size float")`).
enum class DeclaredType {
  kFloat,
  kInt,
  kString,
  kBool,
  kTensor,       // rank >= 2 plain column (images, embeddings)
  kProbability,  // PE column
};

struct DeclaredColumn {
  std::string name;
  DeclaredType type;
};

/// "float", "probability", ... — the SQL-ish spelling used in rendered
/// signatures and error messages.
std::string DeclaredTypeName(DeclaredType type);

/// Rows per model forward pass when a batchable function does not declare
/// a preference. Large enough to amortize kernel launch/setup, small
/// enough that image batches stay cache- and queue-friendly.
inline constexpr int64_t kDefaultModelBatchRows = 256;

/// One evaluated argument of a scalar UDF call: either a per-row column or
/// a constant (e.g. the query string in image_text_similarity("dog", imgs)).
struct Argument {
  bool is_scalar = false;
  exec::ScalarValue scalar;
  Column column;
};

/// Scalar UDF body: columns/constants in, one column (num_rows values) out.
/// Bodies are tensor programs — they run on the same runtime as relational
/// operators, so "context switches" into ML are free (§3 of the paper).
using ScalarFn = std::function<StatusOr<Column>(
    const std::vector<Argument>& args, int64_t num_rows, Device device)>;

/// TVF body: a chunk in, a chunk out (row counts may differ — e.g.
/// parse_mnist_grid maps 1 grid row to 9 tile rows).
using TableFn = std::function<StatusOr<exec::Chunk>(
    const exec::Chunk& input, const std::vector<exec::ScalarValue>& args,
    Device device)>;

/// Registered scalar function. `modules` lists the trainable nn::Modules
/// the body closes over — compiled queries surface their parameters.
struct ScalarFunction {
  std::string name;
  DeclaredType return_type = DeclaredType::kFloat;
  ScalarFn fn;
  std::vector<std::shared_ptr<nn::Module>> modules;

  /// A batchable body is row-local: output row i depends only on input row
  /// i (and the scalar args), never on which other rows share the batch.
  /// The planner streams batchable calls through the ModelEval micro-batch
  /// operator instead of a pipeline breaker, and the InferenceScheduler
  /// may coalesce concurrent calls into one forward — both partitions are
  /// bit-identical to a whole-relation call precisely because of
  /// row-locality. Leave false (the default) for batch-dependent bodies
  /// (e.g. batch normalization), which keep breaker semantics.
  bool batchable = false;
  /// Preferred rows per forward pass; 0 means kDefaultModelBatchRows.
  int64_t preferred_batch_rows = 0;
};

struct TableFunction {
  std::string name;
  std::vector<DeclaredColumn> output_schema;
  TableFn fn;
  std::vector<std::shared_ptr<nn::Module>> modules;

  /// Scalar-argument contract, enforced at bind time: the call must pass
  /// between min_args and max_args literal arguments (max_args < 0 means
  /// unbounded). `param_names` feeds the rendered signature in error
  /// messages; it may be shorter than max_args.
  int min_args = 0;
  int max_args = -1;
  std::vector<std::string> param_names;

  /// Row-local contract for TVFs: the output rows produced for input row i
  /// depend only on input row i (their count included). Batchable TVFs
  /// stream through the ModelEval micro-batch operator; non-batchable ones
  /// keep today's whole-input breaker semantics. TVF outputs are never
  /// coalesced across queries (row counts may change, so per-request
  /// result splitting is not well defined).
  bool batchable = false;
  int64_t preferred_batch_rows = 0;
};

/// "name(arg, ...) -> (Col type, ...)" — the signature rendered into
/// bind-time arity/type errors so they name the function being called.
std::string TvfSignature(const TableFunction& fn);

/// Arity check whose error names the function and its expected signature.
Status CheckTvfArity(const TableFunction& fn, size_t num_args);

/// Names the SQL binder resolves as built-in aggregates / vector
/// similarity functions BEFORE consulting the registry. Defined here —
/// next to the registration check that rejects them — so the binder and
/// the registry share one list and a new built-in cannot reintroduce
/// silent UDF shadowing. `lower_name` must already be lowercased (the
/// parser lowercases function names).
bool IsBuiltinAggregateName(const std::string& lower_name);
bool IsBuiltinVectorSimName(const std::string& lower_name);

/// Name -> function map for one session (names case-insensitive). This is
/// the C++ analogue of the paper's `@tdp_udf` annotation API.
class FunctionRegistry {
 public:
  FunctionRegistry() = default;

  FunctionRegistry(const FunctionRegistry&) = delete;
  FunctionRegistry& operator=(const FunctionRegistry&) = delete;

  Status RegisterScalar(ScalarFunction fn);
  Status RegisterTable(TableFunction fn);

  /// nullptr when not registered.
  const ScalarFunction* FindScalar(const std::string& name) const;
  const TableFunction* FindTable(const std::string& name) const;

  std::vector<std::string> ListFunctions() const;

 private:
  std::map<std::string, ScalarFunction> scalar_fns_;  // lowercased keys
  std::map<std::string, TableFunction> table_fns_;
};

}  // namespace udf
}  // namespace tdp

#endif  // TDP_UDF_REGISTRY_H_
