#include "src/sql/parser.h"

#include <limits>
#include <utility>

#include "src/common/string_util.h"
#include "src/sql/lexer.h"

namespace tdp {
namespace sql {
namespace {

/// Lexer numbers are doubles; casting a double >= 2^63 to int64 is UB, so
/// pathological `LIMIT 9223372036854775807` must saturate, not wrap to a
/// negative offset (which then indexed out of bounds).
int64_t SaturatingRowCount(double value) {
  constexpr int64_t kMax = std::numeric_limits<int64_t>::max();
  if (value >= static_cast<double>(kMax)) return kMax;
  if (value <= 0) return 0;
  return static_cast<int64_t>(value);
}

class Parser {
 public:
  explicit Parser(std::vector<Token> tokens) : tokens_(std::move(tokens)) {}

  StatusOr<std::unique_ptr<SelectStatement>> ParseStatement() {
    TDP_ASSIGN_OR_RETURN(auto stmt, ParseSelect());
    // Optional trailing semicolon would have been rejected by the lexer;
    // just require end of input.
    if (Peek().type != TokenType::kEnd) {
      return Unexpected("end of statement");
    }
    return stmt;
  }

  /// Top-level dispatch over every statement kind the dialect supports.
  StatusOr<StatementPtr> ParseAnyStatement() {
    StatementPtr stmt;
    if (PeekKeyword("SELECT")) {
      TDP_ASSIGN_OR_RETURN(auto select, ParseSelect());
      stmt = std::move(select);
    } else if (PeekKeyword("CREATE")) {
      TDP_ASSIGN_OR_RETURN(stmt, ParseCreateTable());
    } else if (PeekKeyword("INSERT")) {
      TDP_ASSIGN_OR_RETURN(stmt, ParseInsert());
    } else if (PeekKeyword("UPDATE")) {
      TDP_ASSIGN_OR_RETURN(stmt, ParseUpdate());
    } else if (PeekKeyword("DELETE")) {
      TDP_ASSIGN_OR_RETURN(stmt, ParseDelete());
    } else {
      return Unexpected("SELECT, CREATE TABLE, INSERT, UPDATE or DELETE");
    }
    if (Peek().type != TokenType::kEnd) {
      return Unexpected("end of statement");
    }
    return stmt;
  }

 private:
  // ---- Token helpers -------------------------------------------------------

  const Token& Peek(size_t ahead = 0) const {
    const size_t i = std::min(pos_ + ahead, tokens_.size() - 1);
    return tokens_[i];
  }
  const Token& Advance() { return tokens_[pos_++]; }

  bool MatchKeyword(const std::string& keyword) {
    if (Peek().type == TokenType::kKeyword && Peek().text == keyword) {
      Advance();
      return true;
    }
    return false;
  }

  bool PeekKeyword(const std::string& keyword, size_t ahead = 0) const {
    return Peek(ahead).type == TokenType::kKeyword &&
           Peek(ahead).text == keyword;
  }

  bool MatchOperator(const std::string& op) {
    if (Peek().type == TokenType::kOperator && Peek().text == op) {
      Advance();
      return true;
    }
    return false;
  }

  bool Match(TokenType type) {
    if (Peek().type == type) {
      Advance();
      return true;
    }
    return false;
  }

  Status ExpectKeyword(const std::string& keyword) {
    if (!MatchKeyword(keyword)) return Unexpected(keyword);
    return Status::OK();
  }

  Status Expect(TokenType type, const std::string& what) {
    if (!Match(type)) return Unexpected(what);
    return Status::OK();
  }

  Status Unexpected(const std::string& expected) const {
    return Status::ParseError("expected " + expected + " but found '" +
                              (Peek().type == TokenType::kEnd ? "<end>"
                                                              : Peek().text) +
                              "' at position " +
                              std::to_string(Peek().position));
  }

  // ---- Grammar -------------------------------------------------------------

  StatusOr<std::unique_ptr<SelectStatement>> ParseSelect() {
    TDP_RETURN_NOT_OK(ExpectKeyword("SELECT"));
    auto stmt = std::make_unique<SelectStatement>();
    if (MatchKeyword("DISTINCT")) stmt->distinct = true;

    // Select list.
    do {
      SelectItem item;
      if (Peek().type == TokenType::kStar) {
        Advance();
        item.expr = std::make_unique<StarExpr>();
      } else {
        TDP_ASSIGN_OR_RETURN(item.expr, ParseExpr());
        if (MatchKeyword("AS")) {
          if (Peek().type != TokenType::kIdentifier) {
            return Unexpected("alias identifier");
          }
          item.alias = Advance().text;
        } else if (Peek().type == TokenType::kIdentifier) {
          item.alias = Advance().text;  // bare alias
        }
      }
      stmt->select_list.push_back(std::move(item));
    } while (Match(TokenType::kComma));

    if (MatchKeyword("FROM")) {
      TDP_ASSIGN_OR_RETURN(stmt->from, ParseTableRef());
    }
    if (MatchKeyword("WHERE")) {
      TDP_ASSIGN_OR_RETURN(stmt->where, ParseExpr());
    }
    if (MatchKeyword("GROUP")) {
      TDP_RETURN_NOT_OK(ExpectKeyword("BY"));
      do {
        TDP_ASSIGN_OR_RETURN(ExprPtr e, ParseExpr());
        stmt->group_by.push_back(std::move(e));
      } while (Match(TokenType::kComma));
    }
    if (MatchKeyword("HAVING")) {
      TDP_ASSIGN_OR_RETURN(stmt->having, ParseExpr());
    }
    if (MatchKeyword("ORDER")) {
      TDP_RETURN_NOT_OK(ExpectKeyword("BY"));
      do {
        OrderByItem item;
        TDP_ASSIGN_OR_RETURN(item.expr, ParseExpr());
        if (MatchKeyword("DESC")) {
          item.descending = true;
        } else {
          MatchKeyword("ASC");
        }
        stmt->order_by.push_back(std::move(item));
      } while (Match(TokenType::kComma));
    }
    if (MatchKeyword("LIMIT")) {
      if (Peek().type != TokenType::kNumber || !Peek().is_integer) {
        return Unexpected("integer LIMIT");
      }
      stmt->limit = SaturatingRowCount(Advance().number_value);
    }
    if (MatchKeyword("OFFSET")) {
      if (Peek().type != TokenType::kNumber || !Peek().is_integer) {
        return Unexpected("integer OFFSET");
      }
      stmt->offset = SaturatingRowCount(Advance().number_value);
    }
    return stmt;
  }

  // ---- DDL / DML -----------------------------------------------------------

  /// Reads an identifier token (table, column or type name).
  StatusOr<std::string> ParseIdentifier(const std::string& what) {
    if (Peek().type != TokenType::kIdentifier) return Unexpected(what);
    return Advance().text;
  }

  /// CREATE TABLE name (col type [, col type ...]). Type names are lexed
  /// as identifiers (see lexer kKeywords comment); TENSOR takes a
  /// parenthesized positive row width.
  StatusOr<StatementPtr> ParseCreateTable() {
    TDP_RETURN_NOT_OK(ExpectKeyword("CREATE"));
    TDP_RETURN_NOT_OK(ExpectKeyword("TABLE"));
    auto stmt = std::make_unique<CreateTableStatement>();
    TDP_ASSIGN_OR_RETURN(stmt->table_name, ParseIdentifier("table name"));
    TDP_RETURN_NOT_OK(Expect(TokenType::kLeftParen, "'('"));
    do {
      ColumnDef def;
      TDP_ASSIGN_OR_RETURN(def.name, ParseIdentifier("column name"));
      TDP_ASSIGN_OR_RETURN(std::string type_name,
                           ParseIdentifier("column type"));
      def.type_name = ToUpper(type_name);
      if (def.type_name == "TENSOR") {
        TDP_RETURN_NOT_OK(Expect(TokenType::kLeftParen, "'(' after TENSOR"));
        if (Peek().type != TokenType::kNumber || !Peek().is_integer ||
            Peek().number_value < 1) {
          return Unexpected("positive integer TENSOR width");
        }
        def.tensor_width = SaturatingRowCount(Advance().number_value);
        TDP_RETURN_NOT_OK(Expect(TokenType::kRightParen, "')'"));
      }
      stmt->columns.push_back(std::move(def));
    } while (Match(TokenType::kComma));
    TDP_RETURN_NOT_OK(Expect(TokenType::kRightParen, "')'"));
    return StatementPtr(std::move(stmt));
  }

  /// INSERT INTO name [(cols)] VALUES (expr, ...), ... | SELECT ... .
  StatusOr<StatementPtr> ParseInsert() {
    TDP_RETURN_NOT_OK(ExpectKeyword("INSERT"));
    TDP_RETURN_NOT_OK(ExpectKeyword("INTO"));
    auto stmt = std::make_unique<InsertStatement>();
    TDP_ASSIGN_OR_RETURN(stmt->table_name, ParseIdentifier("table name"));
    if (Match(TokenType::kLeftParen)) {
      do {
        TDP_ASSIGN_OR_RETURN(std::string col,
                             ParseIdentifier("column name"));
        stmt->columns.push_back(std::move(col));
      } while (Match(TokenType::kComma));
      TDP_RETURN_NOT_OK(Expect(TokenType::kRightParen, "')'"));
    }
    if (MatchKeyword("VALUES")) {
      do {
        TDP_RETURN_NOT_OK(Expect(TokenType::kLeftParen, "'('"));
        std::vector<ExprPtr> row;
        do {
          TDP_ASSIGN_OR_RETURN(ExprPtr value, ParseExpr());
          row.push_back(std::move(value));
        } while (Match(TokenType::kComma));
        TDP_RETURN_NOT_OK(Expect(TokenType::kRightParen, "')'"));
        if (!stmt->values.empty() &&
            row.size() != stmt->values.front().size()) {
          return Status::ParseError(
              "VALUES rows have inconsistent arity: row " +
              std::to_string(stmt->values.size() + 1) + " has " +
              std::to_string(row.size()) + " values, row 1 has " +
              std::to_string(stmt->values.front().size()));
        }
        stmt->values.push_back(std::move(row));
      } while (Match(TokenType::kComma));
    } else if (PeekKeyword("SELECT")) {
      TDP_ASSIGN_OR_RETURN(stmt->select, ParseSelect());
    } else {
      return Unexpected("VALUES or SELECT");
    }
    return StatementPtr(std::move(stmt));
  }

  /// UPDATE name SET col = expr [, col = expr ...] [WHERE pred].
  StatusOr<StatementPtr> ParseUpdate() {
    TDP_RETURN_NOT_OK(ExpectKeyword("UPDATE"));
    auto stmt = std::make_unique<UpdateStatement>();
    TDP_ASSIGN_OR_RETURN(stmt->table_name, ParseIdentifier("table name"));
    TDP_RETURN_NOT_OK(ExpectKeyword("SET"));
    do {
      TDP_ASSIGN_OR_RETURN(std::string col, ParseIdentifier("column name"));
      if (!MatchOperator("=")) return Unexpected("'='");
      TDP_ASSIGN_OR_RETURN(ExprPtr value, ParseExpr());
      stmt->assignments.emplace_back(std::move(col), std::move(value));
    } while (Match(TokenType::kComma));
    if (MatchKeyword("WHERE")) {
      TDP_ASSIGN_OR_RETURN(stmt->where, ParseExpr());
    }
    return StatementPtr(std::move(stmt));
  }

  /// DELETE FROM name [WHERE pred].
  StatusOr<StatementPtr> ParseDelete() {
    TDP_RETURN_NOT_OK(ExpectKeyword("DELETE"));
    TDP_RETURN_NOT_OK(ExpectKeyword("FROM"));
    auto stmt = std::make_unique<DeleteStatement>();
    TDP_ASSIGN_OR_RETURN(stmt->table_name, ParseIdentifier("table name"));
    if (MatchKeyword("WHERE")) {
      TDP_ASSIGN_OR_RETURN(stmt->where, ParseExpr());
    }
    return StatementPtr(std::move(stmt));
  }

  StatusOr<TableRefPtr> ParseTableRef() {
    TDP_ASSIGN_OR_RETURN(TableRefPtr left, ParseSingleTableRef());
    // JOIN chains, left-associative.
    for (;;) {
      JoinType join_type = JoinType::kInner;
      if (MatchKeyword("JOIN")) {
        join_type = JoinType::kInner;
      } else if (PeekKeyword("INNER") && PeekKeyword("JOIN", 1)) {
        Advance();
        Advance();
        join_type = JoinType::kInner;
      } else if (PeekKeyword("LEFT") && PeekKeyword("JOIN", 1)) {
        Advance();
        Advance();
        join_type = JoinType::kLeft;
      } else {
        break;
      }
      auto join = std::make_unique<JoinRef>();
      join->join_type = join_type;
      join->left = std::move(left);
      TDP_ASSIGN_OR_RETURN(join->right, ParseSingleTableRef());
      TDP_RETURN_NOT_OK(ExpectKeyword("ON"));
      TDP_ASSIGN_OR_RETURN(join->condition, ParseExpr());
      left = std::move(join);
    }
    return left;
  }

  StatusOr<TableRefPtr> ParseSingleTableRef() {
    TableRefPtr ref;
    if (Match(TokenType::kLeftParen)) {
      auto sub = std::make_unique<SubqueryRef>();
      TDP_ASSIGN_OR_RETURN(sub->subquery, ParseSelect());
      TDP_RETURN_NOT_OK(Expect(TokenType::kRightParen, "')'"));
      ref = std::move(sub);
    } else if (Peek().type == TokenType::kIdentifier &&
               Peek(1).type == TokenType::kLeftParen) {
      // Table-valued function: tvf(input_table_or_subquery [, literal...]).
      auto tvf = std::make_unique<TableFunctionRef>();
      tvf->function_name = ToLower(Advance().text);
      Advance();  // '('
      if (PeekKeyword("SELECT")) {
        auto sub = std::make_unique<SubqueryRef>();
        TDP_ASSIGN_OR_RETURN(sub->subquery, ParseSelect());
        tvf->input = std::move(sub);
      } else if (Peek().type == TokenType::kIdentifier) {
        tvf->input = std::make_unique<BaseTableRef>(Advance().text);
      } else {
        return Unexpected("input table or subquery in table function");
      }
      while (Match(TokenType::kComma)) {
        TDP_ASSIGN_OR_RETURN(ExprPtr arg, ParseExpr());
        tvf->extra_args.push_back(std::move(arg));
      }
      TDP_RETURN_NOT_OK(Expect(TokenType::kRightParen, "')'"));
      ref = std::move(tvf);
    } else if (Peek().type == TokenType::kIdentifier) {
      ref = std::make_unique<BaseTableRef>(Advance().text);
    } else {
      return Unexpected("table reference");
    }

    if (MatchKeyword("AS")) {
      if (Peek().type != TokenType::kIdentifier) {
        return Unexpected("table alias");
      }
      ref->alias = Advance().text;
    } else if (Peek().type == TokenType::kIdentifier) {
      ref->alias = Advance().text;
    }
    return ref;
  }

  // ---- Expressions (precedence climbing) -----------------------------------

  StatusOr<ExprPtr> ParseExpr() { return ParseOr(); }

  StatusOr<ExprPtr> ParseOr() {
    TDP_ASSIGN_OR_RETURN(ExprPtr left, ParseAnd());
    while (MatchKeyword("OR")) {
      TDP_ASSIGN_OR_RETURN(ExprPtr right, ParseAnd());
      left = std::make_unique<BinaryExpr>(BinaryOp::kOr, std::move(left),
                                          std::move(right));
    }
    return left;
  }

  StatusOr<ExprPtr> ParseAnd() {
    TDP_ASSIGN_OR_RETURN(ExprPtr left, ParseNot());
    while (MatchKeyword("AND")) {
      TDP_ASSIGN_OR_RETURN(ExprPtr right, ParseNot());
      left = std::make_unique<BinaryExpr>(BinaryOp::kAnd, std::move(left),
                                          std::move(right));
    }
    return left;
  }

  StatusOr<ExprPtr> ParseNot() {
    if (MatchKeyword("NOT")) {
      TDP_ASSIGN_OR_RETURN(ExprPtr operand, ParseNot());
      return ExprPtr(
          std::make_unique<UnaryExpr>(UnaryOp::kNot, std::move(operand)));
    }
    return ParseComparison();
  }

  StatusOr<ExprPtr> ParseComparison() {
    TDP_ASSIGN_OR_RETURN(ExprPtr left, ParseAddSub());
    // BETWEEN lo AND hi  ->  (left >= lo AND left <= hi)
    if (MatchKeyword("BETWEEN")) {
      TDP_ASSIGN_OR_RETURN(ExprPtr lo, ParseAddSub());
      TDP_RETURN_NOT_OK(ExpectKeyword("AND"));
      TDP_ASSIGN_OR_RETURN(ExprPtr hi, ParseAddSub());
      auto left_copy = CloneForBetween(left);
      auto ge = std::make_unique<BinaryExpr>(BinaryOp::kGe, std::move(left),
                                             std::move(lo));
      auto le = std::make_unique<BinaryExpr>(
          BinaryOp::kLe, std::move(left_copy), std::move(hi));
      return ExprPtr(std::make_unique<BinaryExpr>(
          BinaryOp::kAnd, std::move(ge), std::move(le)));
    }
    // IN (v1, v2, ...) -> (left = v1 OR left = v2 ...)
    if (MatchKeyword("IN")) {
      TDP_RETURN_NOT_OK(Expect(TokenType::kLeftParen, "'('"));
      ExprPtr disjunction;
      do {
        TDP_ASSIGN_OR_RETURN(ExprPtr value, ParseAddSub());
        auto eq = std::make_unique<BinaryExpr>(
            BinaryOp::kEq, CloneForBetween(left), std::move(value));
        if (disjunction) {
          disjunction = std::make_unique<BinaryExpr>(
              BinaryOp::kOr, std::move(disjunction), std::move(eq));
        } else {
          disjunction = std::move(eq);
        }
      } while (Match(TokenType::kComma));
      TDP_RETURN_NOT_OK(Expect(TokenType::kRightParen, "')'"));
      return disjunction;
    }
    static constexpr std::pair<const char*, BinaryOp> kCompareOps[] = {
        {"=", BinaryOp::kEq},  {"<>", BinaryOp::kNe}, {"!=", BinaryOp::kNe},
        {"<=", BinaryOp::kLe}, {">=", BinaryOp::kGe}, {"<", BinaryOp::kLt},
        {">", BinaryOp::kGt},
    };
    for (const auto& [text, op] : kCompareOps) {
      if (Peek().type == TokenType::kOperator && Peek().text == text) {
        Advance();
        TDP_ASSIGN_OR_RETURN(ExprPtr right, ParseAddSub());
        return ExprPtr(std::make_unique<BinaryExpr>(op, std::move(left),
                                                    std::move(right)));
      }
    }
    return left;
  }

  StatusOr<ExprPtr> ParseAddSub() {
    TDP_ASSIGN_OR_RETURN(ExprPtr left, ParseMulDiv());
    for (;;) {
      BinaryOp op;
      if (MatchOperator("+")) {
        op = BinaryOp::kAdd;
      } else if (MatchOperator("-")) {
        op = BinaryOp::kSub;
      } else {
        return left;
      }
      TDP_ASSIGN_OR_RETURN(ExprPtr right, ParseMulDiv());
      left = std::make_unique<BinaryExpr>(op, std::move(left),
                                          std::move(right));
    }
  }

  StatusOr<ExprPtr> ParseMulDiv() {
    TDP_ASSIGN_OR_RETURN(ExprPtr left, ParseUnary());
    for (;;) {
      BinaryOp op;
      if (Peek().type == TokenType::kStar) {
        Advance();
        op = BinaryOp::kMul;
      } else if (MatchOperator("/")) {
        op = BinaryOp::kDiv;
      } else if (MatchOperator("%")) {
        op = BinaryOp::kMod;
      } else {
        return left;
      }
      TDP_ASSIGN_OR_RETURN(ExprPtr right, ParseUnary());
      left = std::make_unique<BinaryExpr>(op, std::move(left),
                                          std::move(right));
    }
  }

  StatusOr<ExprPtr> ParseUnary() {
    if (MatchOperator("-")) {
      TDP_ASSIGN_OR_RETURN(ExprPtr operand, ParseUnary());
      return ExprPtr(
          std::make_unique<UnaryExpr>(UnaryOp::kNeg, std::move(operand)));
    }
    if (MatchOperator("+")) {
      return ParseUnary();
    }
    return ParsePrimary();
  }

  StatusOr<ExprPtr> ParsePrimary() {
    const Token& token = Peek();
    switch (token.type) {
      case TokenType::kNumber: {
        Advance();
        auto lit = std::make_unique<LiteralExpr>();
        lit->literal_kind =
            token.is_integer ? LiteralKind::kInteger : LiteralKind::kFloat;
        lit->number_value = token.number_value;
        return ExprPtr(std::move(lit));
      }
      case TokenType::kString: {
        Advance();
        auto lit = std::make_unique<LiteralExpr>();
        lit->literal_kind = LiteralKind::kString;
        lit->string_value = token.text;
        return ExprPtr(std::move(lit));
      }
      case TokenType::kParameter: {
        Advance();
        return ExprPtr(std::make_unique<ParameterExpr>(num_parameters_++));
      }
      case TokenType::kLeftParen: {
        Advance();
        TDP_ASSIGN_OR_RETURN(ExprPtr inner, ParseExpr());
        TDP_RETURN_NOT_OK(Expect(TokenType::kRightParen, "')'"));
        return inner;
      }
      case TokenType::kKeyword: {
        if (token.text == "TRUE" || token.text == "FALSE") {
          Advance();
          auto lit = std::make_unique<LiteralExpr>();
          lit->literal_kind = LiteralKind::kBoolean;
          lit->bool_value = token.text == "TRUE";
          return ExprPtr(std::move(lit));
        }
        if (token.text == "NULL") {
          Advance();
          auto lit = std::make_unique<LiteralExpr>();
          lit->literal_kind = LiteralKind::kNull;
          return ExprPtr(std::move(lit));
        }
        if (token.text == "CASE") return ParseCase();
        // Aggregate keywords used as function names.
        if (token.text == "COUNT" || token.text == "SUM" ||
            token.text == "AVG" || token.text == "MIN" ||
            token.text == "MAX") {
          return ParseFunctionCall(ToLower(Advance().text));
        }
        return Unexpected("expression");
      }
      case TokenType::kIdentifier: {
        // function call, qualified column, or bare column
        if (Peek(1).type == TokenType::kLeftParen) {
          return ParseFunctionCall(ToLower(Advance().text));
        }
        std::string first = Advance().text;
        if (Match(TokenType::kDot)) {
          if (Peek().type != TokenType::kIdentifier) {
            return Unexpected("column name after '.'");
          }
          std::string column = Advance().text;
          return ExprPtr(std::make_unique<ColumnRefExpr>(std::move(first),
                                                         std::move(column)));
        }
        return ExprPtr(std::make_unique<ColumnRefExpr>("", std::move(first)));
      }
      default:
        return Unexpected("expression");
    }
  }

  StatusOr<ExprPtr> ParseFunctionCall(std::string name) {
    TDP_RETURN_NOT_OK(Expect(TokenType::kLeftParen, "'('"));
    auto call = std::make_unique<FunctionCallExpr>();
    call->function_name = std::move(name);
    if (MatchKeyword("DISTINCT")) call->distinct = true;
    if (Peek().type == TokenType::kStar) {
      Advance();
      call->is_star_arg = true;
    } else if (Peek().type != TokenType::kRightParen) {
      do {
        TDP_ASSIGN_OR_RETURN(ExprPtr arg, ParseExpr());
        call->args.push_back(std::move(arg));
      } while (Match(TokenType::kComma));
    }
    TDP_RETURN_NOT_OK(Expect(TokenType::kRightParen, "')'"));
    return ExprPtr(std::move(call));
  }

  StatusOr<ExprPtr> ParseCase() {
    TDP_RETURN_NOT_OK(ExpectKeyword("CASE"));
    auto kase = std::make_unique<CaseExpr>();
    while (MatchKeyword("WHEN")) {
      TDP_ASSIGN_OR_RETURN(ExprPtr when, ParseExpr());
      TDP_RETURN_NOT_OK(ExpectKeyword("THEN"));
      TDP_ASSIGN_OR_RETURN(ExprPtr then, ParseExpr());
      kase->branches.emplace_back(std::move(when), std::move(then));
    }
    if (kase->branches.empty()) return Unexpected("WHEN");
    if (MatchKeyword("ELSE")) {
      TDP_ASSIGN_OR_RETURN(kase->else_expr, ParseExpr());
    }
    TDP_RETURN_NOT_OK(ExpectKeyword("END"));
    return ExprPtr(std::move(kase));
  }

  // BETWEEN/IN need the left operand twice; deep-clone via re-parse is
  // overkill, so clone structurally.
  static ExprPtr CloneForBetween(const ExprPtr& e);

  std::vector<Token> tokens_;
  size_t pos_ = 0;
  // '?' placeholders are numbered left-to-right across the whole statement
  // (including subqueries), matching the order of values passed to Run().
  int64_t num_parameters_ = 0;
};

ExprPtr Parser::CloneForBetween(const ExprPtr& e) { return CloneExpr(*e); }

}  // namespace

StatusOr<std::unique_ptr<SelectStatement>> Parse(const std::string& sql) {
  TDP_ASSIGN_OR_RETURN(std::vector<Token> tokens, Tokenize(sql));
  Parser parser(std::move(tokens));
  return parser.ParseStatement();
}

StatusOr<StatementPtr> ParseStatement(const std::string& sql) {
  TDP_ASSIGN_OR_RETURN(std::vector<Token> tokens, Tokenize(sql));
  Parser parser(std::move(tokens));
  return parser.ParseAnyStatement();
}

}  // namespace sql
}  // namespace tdp
