#ifndef TDP_SQL_PARSER_H_
#define TDP_SQL_PARSER_H_

#include <memory>
#include <string>

#include "src/common/statusor.h"
#include "src/sql/ast.h"

namespace tdp {
namespace sql {

/// Parses one SELECT statement (optionally ';'-terminated). TDP's SQL
/// dialect covers the analytical subset the paper exercises: projections
/// with expressions and aliases, scalar UDF calls, TVFs in FROM, WHERE,
/// GROUP BY + aggregates, HAVING, ORDER BY, LIMIT/OFFSET, INNER/LEFT JOIN,
/// FROM-subqueries, DISTINCT, CASE, BETWEEN, IN.
StatusOr<std::unique_ptr<SelectStatement>> Parse(const std::string& sql);

/// Parses one statement of any kind: the SELECT dialect above plus the
/// write statements (CREATE TABLE, INSERT [VALUES | SELECT], UPDATE,
/// DELETE). Dispatch on `Statement::kind`.
StatusOr<StatementPtr> ParseStatement(const std::string& sql);

}  // namespace sql
}  // namespace tdp

#endif  // TDP_SQL_PARSER_H_
