#ifndef TDP_SQL_BINDER_H_
#define TDP_SQL_BINDER_H_

#include <memory>

#include "src/common/statusor.h"
#include "src/plan/logical_plan.h"
#include "src/sql/ast.h"
#include "src/storage/catalog.h"
#include "src/udf/registry.h"

namespace tdp {
namespace sql {

/// Resolves names and types in a parsed SELECT against a catalog and
/// function registry, producing a bound logical plan:
///
///   Scan/TvfScan -> Filter(WHERE) -> Aggregate -> Filter(HAVING)
///     -> Project -> Distinct -> Sort -> Limit
///
/// (nodes omitted when the query lacks the clause). Aggregate expressions
/// in SELECT/HAVING are decomposed into AggDefs plus post-aggregation
/// expressions over the aggregate's output.
class Binder {
 public:
  Binder(const Catalog& catalog, const udf::FunctionRegistry& registry)
      : catalog_(catalog), registry_(registry) {}

  StatusOr<plan::LogicalNodePtr> Bind(const SelectStatement& stmt);

  /// Binds any statement kind. SELECT binds as above; the write statements
  /// bind to CreateTable/Insert/Update/Delete root nodes whose output
  /// schema is the single `rows_affected` int64 column. UPDATE and DELETE
  /// get a full-schema Scan of the target table as children[0] (their
  /// predicates and assignments are bound against it); INSERT ... SELECT
  /// plans its source as children[0].
  StatusOr<plan::LogicalNodePtr> Bind(const Statement& stmt);

 private:
  const Catalog& catalog_;
  const udf::FunctionRegistry& registry_;
};

}  // namespace sql
}  // namespace tdp

#endif  // TDP_SQL_BINDER_H_
