#include "src/sql/binder.h"

#include <map>
#include <set>
#include <utility>

#include "src/common/string_util.h"

namespace tdp {
namespace sql {

using exec::BoundBinary;
using exec::BoundCase;
using exec::BoundColumnRef;
using exec::BoundExpr;
using exec::BoundExprPtr;
using exec::BoundLiteral;
using exec::BoundUdfCall;
using exec::BoundUnary;
using exec::ScalarValue;
using plan::AggDef;
using plan::AggKind;
using plan::AggregateNode;
using plan::ColumnMeta;
using plan::CreateTableNode;
using plan::DeleteNode;
using plan::DistinctNode;
using plan::FilterNode;
using plan::InsertNode;
using plan::JoinNode;
using plan::LimitNode;
using plan::LogicalNode;
using plan::LogicalNodePtr;
using plan::ProjectNode;
using plan::ScanNode;
using plan::Schema;
using plan::SortItem;
using plan::SortNode;
using plan::TvfScanNode;
using plan::UpdateNode;

namespace {

/// Name resolution context: one entry per visible column.
struct BindScope {
  Schema schema;
  std::vector<std::string> qualifiers;  // table alias per column

  int64_t size() const { return static_cast<int64_t>(schema.size()); }
};

// Built-in names (aggregates; `dot`/`cosine_sim` vector similarity)
// resolve before the UDF registry — they are part of the language, not
// session state, so the IndexTopK rewrite can rely on their semantics.
// The single name lists live in udf/registry.h, next to the registration
// check that rejects them as UDF names.
bool IsAggregateName(const std::string& lower_name) {
  return udf::IsBuiltinAggregateName(lower_name);
}

bool IsVectorSimName(const std::string& lower_name) {
  return udf::IsBuiltinVectorSimName(lower_name);
}

StatusOr<AggKind> AggKindFromName(const std::string& lower_name,
                                  bool is_star) {
  if (lower_name == "count") {
    return is_star ? AggKind::kCountStar : AggKind::kCount;
  }
  if (is_star) {
    return Status::BindError("* argument only valid in COUNT(*)");
  }
  if (lower_name == "sum") return AggKind::kSum;
  if (lower_name == "avg") return AggKind::kAvg;
  if (lower_name == "min") return AggKind::kMin;
  if (lower_name == "max") return AggKind::kMax;
  return Status::BindError("unknown aggregate: " + lower_name);
}

/// True if the expression tree contains an aggregate function call.
bool ContainsAggregate(const Expr& e) {
  switch (e.kind) {
    case ExprKind::kFunctionCall: {
      const auto& f = static_cast<const FunctionCallExpr&>(e);
      if (IsAggregateName(f.function_name)) return true;
      for (const auto& a : f.args) {
        if (ContainsAggregate(*a)) return true;
      }
      return false;
    }
    case ExprKind::kBinary: {
      const auto& b = static_cast<const BinaryExpr&>(e);
      return ContainsAggregate(*b.left) || ContainsAggregate(*b.right);
    }
    case ExprKind::kUnary:
      return ContainsAggregate(*static_cast<const UnaryExpr&>(e).operand);
    case ExprKind::kCase: {
      const auto& c = static_cast<const CaseExpr&>(e);
      for (const auto& [when, then] : c.branches) {
        if (ContainsAggregate(*when) || ContainsAggregate(*then)) return true;
      }
      return c.else_expr && ContainsAggregate(*c.else_expr);
    }
    default:
      return false;
  }
}

ColumnMeta MetaFromColumn(const std::string& name, const Column& column) {
  ColumnMeta meta;
  meta.name = name;
  meta.encoding = column.encoding();
  meta.dtype = column.data().dtype();
  meta.is_tensor = column.IsTensorColumn();
  return meta;
}

/// Output schema shared by every write statement: one int64 row count.
Schema RowsAffectedSchema() {
  ColumnMeta meta;
  meta.name = "rows_affected";
  meta.dtype = DType::kInt64;
  return Schema{meta};
}

/// Maps a declared CREATE TABLE type name to storage metadata. The
/// parser uppercases type names and validates TENSOR's width; everything
/// else (including unknown names) is decided here.
Status ApplyDeclaredTypeName(const ColumnDef& def, ColumnMeta& meta,
                             int64_t& tensor_width) {
  tensor_width = 0;
  const std::string& t = def.type_name;
  if (t == "INT" || t == "INTEGER" || t == "BIGINT") {
    meta.dtype = DType::kInt64;
  } else if (t == "FLOAT" || t == "REAL") {
    meta.dtype = DType::kFloat32;
  } else if (t == "DOUBLE") {
    meta.dtype = DType::kFloat64;
  } else if (t == "TEXT" || t == "STRING" || t == "VARCHAR") {
    meta.encoding = Encoding::kDictionary;
    meta.dtype = DType::kInt64;
  } else if (t == "BOOL" || t == "BOOLEAN") {
    meta.dtype = DType::kBool;
  } else if (t == "TENSOR") {
    meta.dtype = DType::kFloat32;
    meta.is_tensor = true;
    tensor_width = def.tensor_width;
  } else {
    return Status::BindError(
        "unknown column type: " + t +
        " (supported: INT, BIGINT, FLOAT, REAL, DOUBLE, TEXT, BOOL, "
        "TENSOR(d))");
  }
  return Status::OK();
}

ColumnMeta MetaFromDeclared(const udf::DeclaredColumn& decl) {
  ColumnMeta meta;
  meta.name = decl.name;
  switch (decl.type) {
    case udf::DeclaredType::kFloat:
      meta.dtype = DType::kFloat32;
      break;
    case udf::DeclaredType::kInt:
      meta.dtype = DType::kInt64;
      break;
    case udf::DeclaredType::kString:
      meta.encoding = Encoding::kDictionary;
      meta.dtype = DType::kInt64;
      break;
    case udf::DeclaredType::kBool:
      meta.dtype = DType::kBool;
      break;
    case udf::DeclaredType::kTensor:
      meta.dtype = DType::kFloat32;
      meta.is_tensor = true;
      break;
    case udf::DeclaredType::kProbability:
      meta.encoding = Encoding::kProbability;
      meta.dtype = DType::kFloat32;
      break;
  }
  return meta;
}

}  // namespace

// Out-of-line implementation object so binder.h stays small.
namespace {

class BinderImpl {
 public:
  BinderImpl(const Catalog& catalog, const udf::FunctionRegistry& registry)
      : catalog_(catalog), registry_(registry) {}

  StatusOr<LogicalNodePtr> BindSelect(const SelectStatement& stmt);
  StatusOr<LogicalNodePtr> BindStatement(const Statement& stmt);

 private:
  // ---- Write statements -----------------------------------------------------

  StatusOr<LogicalNodePtr> BindCreateTable(const CreateTableStatement& stmt);
  StatusOr<LogicalNodePtr> BindInsert(const InsertStatement& stmt);
  StatusOr<LogicalNodePtr> BindUpdate(const UpdateStatement& stmt);
  StatusOr<LogicalNodePtr> BindDelete(const DeleteStatement& stmt);

  /// Full-schema Scan of a write statement's target table, plus the scope
  /// its WHERE / SET expressions bind against. Deliberately NOT the pruned
  /// scan a SELECT would get: the DML kernels need every column of the old
  /// rows to assemble the replacement table.
  StatusOr<std::pair<LogicalNodePtr, BindScope>> BindWriteTargetScan(
      const std::string& table_name);
  using Scope = BindScope;

  // ---- FROM ----------------------------------------------------------------

  StatusOr<std::pair<LogicalNodePtr, Scope>> BindTableRef(const TableRef& ref);

  StatusOr<std::pair<LogicalNodePtr, Scope>> BindBaseTable(
      const BaseTableRef& ref);
  StatusOr<std::pair<LogicalNodePtr, Scope>> BindTvf(
      const TableFunctionRef& ref);
  StatusOr<std::pair<LogicalNodePtr, Scope>> BindJoin(const JoinRef& ref);

  // ---- Expressions ----------------------------------------------------------

  StatusOr<BoundExprPtr> BindExpr(const Expr& e, const Scope& scope);
  StatusOr<BoundExprPtr> BindColumnRef(const ColumnRefExpr& e,
                                       const Scope& scope);

  /// Binds a post-aggregation expression: aggregate calls and group
  /// expressions become column references into the aggregate output scope.
  StatusOr<BoundExprPtr> BindPostAgg(
      const Expr& e, const Scope& input_scope,
      const std::vector<std::string>& group_strings,
      std::vector<AggDef>& aggs, const Scope& agg_scope);

  ColumnMeta InferMeta(const BoundExpr& e, const Scope& scope,
                       const std::string& name) const;

  const Catalog& catalog_;
  const udf::FunctionRegistry& registry_;
};

StatusOr<std::pair<LogicalNodePtr, BindScope>> BinderImpl::BindBaseTable(
    const BaseTableRef& ref) {
  TDP_ASSIGN_OR_RETURN(std::shared_ptr<Table> table,
                       catalog_.GetTable(ref.table_name));
  auto node = std::make_unique<ScanNode>();
  node->table_name = ref.table_name;
  Scope scope;
  const std::string qualifier =
      ref.alias.empty() ? ref.table_name : ref.alias;
  for (int64_t i = 0; i < table->num_columns(); ++i) {
    scope.schema.push_back(
        MetaFromColumn(table->column_names()[static_cast<size_t>(i)],
                       table->column(i)));
    scope.qualifiers.push_back(qualifier);
  }
  node->schema = scope.schema;
  return std::make_pair(LogicalNodePtr(std::move(node)), std::move(scope));
}

StatusOr<std::pair<LogicalNodePtr, BindScope>> BinderImpl::BindTvf(
    const TableFunctionRef& ref) {
  const udf::TableFunction* fn = registry_.FindTable(ref.function_name);
  if (fn == nullptr) {
    return Status::BindError("unknown table function: " + ref.function_name);
  }
  TDP_RETURN_NOT_OK(udf::CheckTvfArity(*fn, ref.extra_args.size()));
  auto node = std::make_unique<TvfScanNode>();
  node->fn = fn;
  TDP_ASSIGN_OR_RETURN(auto bound_input, BindTableRef(*ref.input));
  node->children.push_back(std::move(bound_input.first));
  for (const ExprPtr& arg : ref.extra_args) {
    // Only literal arguments are supported (the paper passes constants).
    if (arg->kind != ExprKind::kLiteral) {
      return Status::BindError(
          "table function " + fn->name +
          " arguments must be literals, got: " + arg->ToString() +
          "; signature: " + udf::TvfSignature(*fn));
    }
    const auto& lit = static_cast<const LiteralExpr&>(*arg);
    switch (lit.literal_kind) {
      case LiteralKind::kInteger:
        node->args.push_back(
            ScalarValue::Int(static_cast<int64_t>(lit.number_value)));
        break;
      case LiteralKind::kFloat:
        node->args.push_back(ScalarValue::Float(lit.number_value));
        break;
      case LiteralKind::kString:
        node->args.push_back(ScalarValue::String(lit.string_value));
        break;
      case LiteralKind::kBoolean:
        node->args.push_back(ScalarValue::Bool(lit.bool_value));
        break;
      case LiteralKind::kNull:
        node->args.push_back(ScalarValue::Null());
        break;
    }
  }
  Scope scope;
  const std::string qualifier =
      ref.alias.empty() ? ref.function_name : ref.alias;
  for (const udf::DeclaredColumn& decl : fn->output_schema) {
    scope.schema.push_back(MetaFromDeclared(decl));
    scope.qualifiers.push_back(qualifier);
  }
  node->schema = scope.schema;
  return std::make_pair(LogicalNodePtr(std::move(node)), std::move(scope));
}

StatusOr<std::pair<LogicalNodePtr, BindScope>> BinderImpl::BindJoin(
    const JoinRef& ref) {
  if (ref.join_type == JoinType::kLeft) {
    return Status::Unimplemented(
        "LEFT JOIN is not supported yet (no NULL semantics in TDP columns)");
  }
  TDP_ASSIGN_OR_RETURN(auto left, BindTableRef(*ref.left));
  TDP_ASSIGN_OR_RETURN(auto right, BindTableRef(*ref.right));
  Scope combined;
  combined.schema = left.second.schema;
  combined.qualifiers = left.second.qualifiers;
  for (size_t i = 0; i < right.second.schema.size(); ++i) {
    combined.schema.push_back(right.second.schema[i]);
    combined.qualifiers.push_back(right.second.qualifiers[i]);
  }
  const int64_t left_size = left.second.size();

  auto node = std::make_unique<JoinNode>();
  node->join_type = ref.join_type;
  node->children.push_back(std::move(left.first));
  node->children.push_back(std::move(right.first));
  node->schema = combined.schema;

  // Split the ON condition into conjuncts; pull out equi-key pairs.
  std::vector<const Expr*> conjuncts;
  std::vector<const Expr*> stack = {ref.condition.get()};
  while (!stack.empty()) {
    const Expr* e = stack.back();
    stack.pop_back();
    if (e->kind == ExprKind::kBinary) {
      const auto& b = static_cast<const BinaryExpr&>(*e);
      if (b.op == BinaryOp::kAnd) {
        stack.push_back(b.left.get());
        stack.push_back(b.right.get());
        continue;
      }
    }
    conjuncts.push_back(e);
  }

  BoundExprPtr residual;
  for (const Expr* conjunct : conjuncts) {
    bool is_equi_key = false;
    if (conjunct->kind == ExprKind::kBinary) {
      const auto& b = static_cast<const BinaryExpr&>(*conjunct);
      if (b.op == BinaryOp::kEq && b.left->kind == ExprKind::kColumnRef &&
          b.right->kind == ExprKind::kColumnRef) {
        TDP_ASSIGN_OR_RETURN(BoundExprPtr lb, BindExpr(*b.left, combined));
        TDP_ASSIGN_OR_RETURN(BoundExprPtr rb, BindExpr(*b.right, combined));
        int64_t li = static_cast<BoundColumnRef&>(*lb).column_index;
        int64_t ri = static_cast<BoundColumnRef&>(*rb).column_index;
        if (li >= left_size && ri < left_size) std::swap(li, ri);
        if (li < left_size && ri >= left_size) {
          node->left_keys.push_back(li);
          node->right_keys.push_back(ri - left_size);
          is_equi_key = true;
        }
      }
    }
    if (!is_equi_key) {
      TDP_ASSIGN_OR_RETURN(BoundExprPtr bound, BindExpr(*conjunct, combined));
      if (node->residual) {
        auto conj = std::make_unique<BoundBinary>(
            BinaryOp::kAnd, std::move(node->residual), std::move(bound));
        conj->display_name = "join residual";
        node->residual = std::move(conj);
      } else {
        node->residual = std::move(bound);
      }
    }
  }
  if (node->left_keys.empty() && !node->residual) {
    return Status::BindError("join requires an ON condition");
  }
  return std::make_pair(LogicalNodePtr(std::move(node)), std::move(combined));
}

StatusOr<std::pair<LogicalNodePtr, BindScope>> BinderImpl::BindTableRef(
    const TableRef& ref) {
  switch (ref.kind) {
    case TableRefKind::kBaseTable:
      return BindBaseTable(static_cast<const BaseTableRef&>(ref));
    case TableRefKind::kTableFunction:
      return BindTvf(static_cast<const TableFunctionRef&>(ref));
    case TableRefKind::kJoin:
      return BindJoin(static_cast<const JoinRef&>(ref));
    case TableRefKind::kSubquery: {
      const auto& sub = static_cast<const SubqueryRef&>(ref);
      TDP_ASSIGN_OR_RETURN(LogicalNodePtr node, BindSelect(*sub.subquery));
      Scope scope;
      const std::string qualifier = ref.alias;
      for (const ColumnMeta& meta : node->schema) {
        scope.schema.push_back(meta);
        scope.qualifiers.push_back(qualifier);
      }
      return std::make_pair(std::move(node), std::move(scope));
    }
  }
  return Status::Internal("unknown table ref kind");
}

StatusOr<BoundExprPtr> BinderImpl::BindColumnRef(const ColumnRefExpr& e,
                                                 const Scope& scope) {
  int64_t found = -1;
  for (int64_t i = 0; i < scope.size(); ++i) {
    const size_t ui = static_cast<size_t>(i);
    if (!EqualsIgnoreCase(scope.schema[ui].name, e.column_name)) continue;
    if (!e.table_name.empty() &&
        !EqualsIgnoreCase(scope.qualifiers[ui], e.table_name)) {
      continue;
    }
    if (found >= 0) {
      return Status::BindError("ambiguous column reference: " + e.ToString());
    }
    found = i;
  }
  if (found < 0) {
    return Status::BindError("column not found: " + e.ToString());
  }
  auto ref = std::make_unique<BoundColumnRef>(found);
  ref->display_name = e.column_name;
  return BoundExprPtr(std::move(ref));
}

StatusOr<BoundExprPtr> BinderImpl::BindExpr(const Expr& e,
                                            const Scope& scope) {
  switch (e.kind) {
    case ExprKind::kColumnRef:
      return BindColumnRef(static_cast<const ColumnRefExpr&>(e), scope);
    case ExprKind::kLiteral: {
      const auto& lit = static_cast<const LiteralExpr&>(e);
      ScalarValue v;
      switch (lit.literal_kind) {
        case LiteralKind::kInteger:
          v = ScalarValue::Int(static_cast<int64_t>(lit.number_value));
          break;
        case LiteralKind::kFloat:
          v = ScalarValue::Float(lit.number_value);
          break;
        case LiteralKind::kString:
          v = ScalarValue::String(lit.string_value);
          break;
        case LiteralKind::kBoolean:
          v = ScalarValue::Bool(lit.bool_value);
          break;
        case LiteralKind::kNull:
          v = ScalarValue::Null();
          break;
      }
      auto bound = std::make_unique<BoundLiteral>(std::move(v));
      bound->display_name = lit.ToString();
      return BoundExprPtr(std::move(bound));
    }
    case ExprKind::kBinary: {
      const auto& b = static_cast<const BinaryExpr&>(e);
      TDP_ASSIGN_OR_RETURN(BoundExprPtr left, BindExpr(*b.left, scope));
      TDP_ASSIGN_OR_RETURN(BoundExprPtr right, BindExpr(*b.right, scope));
      auto bound = std::make_unique<BoundBinary>(b.op, std::move(left),
                                                 std::move(right));
      bound->display_name = b.ToString();
      return BoundExprPtr(std::move(bound));
    }
    case ExprKind::kUnary: {
      const auto& u = static_cast<const UnaryExpr&>(e);
      TDP_ASSIGN_OR_RETURN(BoundExprPtr operand, BindExpr(*u.operand, scope));
      auto bound = std::make_unique<BoundUnary>(u.op, std::move(operand));
      bound->display_name = u.ToString();
      return BoundExprPtr(std::move(bound));
    }
    case ExprKind::kFunctionCall: {
      const auto& f = static_cast<const FunctionCallExpr&>(e);
      if (IsAggregateName(f.function_name)) {
        return Status::BindError(
            "aggregate " + f.function_name +
            " is not allowed here (only in SELECT/HAVING with GROUP BY)");
      }
      if (IsVectorSimName(f.function_name)) {
        if (f.is_star_arg || f.args.size() != 2) {
          return Status::BindError(f.function_name +
                                   " takes exactly two arguments: "
                                   "(embedding_column, query_vector)");
        }
        TDP_ASSIGN_OR_RETURN(BoundExprPtr col, BindExpr(*f.args[0], scope));
        TDP_ASSIGN_OR_RETURN(BoundExprPtr query,
                             BindExpr(*f.args[1], scope));
        auto bound = std::make_unique<exec::BoundVectorSim>(
            f.function_name == "dot"
                ? exec::BoundVectorSim::SimKind::kDot
                : exec::BoundVectorSim::SimKind::kCosine,
            std::move(col), std::move(query));
        bound->display_name = f.ToString();
        return BoundExprPtr(std::move(bound));
      }
      const udf::ScalarFunction* fn = registry_.FindScalar(f.function_name);
      if (fn == nullptr) {
        return Status::BindError("unknown function: " + f.function_name);
      }
      auto bound = std::make_unique<BoundUdfCall>();
      bound->fn = fn;
      for (const ExprPtr& arg : f.args) {
        TDP_ASSIGN_OR_RETURN(BoundExprPtr bound_arg, BindExpr(*arg, scope));
        bound->args.push_back(std::move(bound_arg));
      }
      bound->display_name = f.ToString();
      return BoundExprPtr(std::move(bound));
    }
    case ExprKind::kCase: {
      const auto& c = static_cast<const CaseExpr&>(e);
      auto bound = std::make_unique<BoundCase>();
      for (const auto& [when, then] : c.branches) {
        TDP_ASSIGN_OR_RETURN(BoundExprPtr bw, BindExpr(*when, scope));
        TDP_ASSIGN_OR_RETURN(BoundExprPtr bt, BindExpr(*then, scope));
        bound->branches.emplace_back(std::move(bw), std::move(bt));
      }
      if (c.else_expr) {
        TDP_ASSIGN_OR_RETURN(bound->else_expr,
                             BindExpr(*c.else_expr, scope));
      }
      bound->display_name = c.ToString();
      return BoundExprPtr(std::move(bound));
    }
    case ExprKind::kParameter: {
      const auto& p = static_cast<const ParameterExpr&>(e);
      auto bound = std::make_unique<exec::BoundParameter>(p.ordinal);
      bound->display_name = "?";
      return BoundExprPtr(std::move(bound));
    }
    case ExprKind::kStar:
      return Status::BindError("'*' is only valid in SELECT * or COUNT(*)");
  }
  return Status::Internal("unknown expression kind");
}

ColumnMeta BinderImpl::InferMeta(const BoundExpr& e, const Scope& scope,
                                 const std::string& name) const {
  ColumnMeta meta;
  meta.name = name;
  switch (e.kind) {
    case exec::BoundExprKind::kColumnRef: {
      const auto& ref = static_cast<const BoundColumnRef&>(e);
      meta = scope.schema[static_cast<size_t>(ref.column_index)];
      meta.name = name;
      return meta;
    }
    case exec::BoundExprKind::kLiteral: {
      const auto& lit = static_cast<const BoundLiteral&>(e);
      if (lit.value.is_int()) {
        meta.dtype = DType::kInt64;
      } else if (lit.value.is_string()) {
        meta.encoding = Encoding::kDictionary;
        meta.dtype = DType::kInt64;
      } else if (lit.value.is_bool()) {
        meta.dtype = DType::kBool;
      } else {
        meta.dtype = DType::kFloat32;
      }
      return meta;
    }
    case exec::BoundExprKind::kBinary: {
      const auto& b = static_cast<const BoundBinary&>(e);
      switch (b.op) {
        case BinaryOp::kEq:
        case BinaryOp::kNe:
        case BinaryOp::kLt:
        case BinaryOp::kLe:
        case BinaryOp::kGt:
        case BinaryOp::kGe:
        case BinaryOp::kAnd:
        case BinaryOp::kOr:
          meta.dtype = DType::kBool;
          return meta;
        case BinaryOp::kDiv:
          meta.dtype = DType::kFloat32;
          return meta;
        default: {
          const ColumnMeta lm = InferMeta(*b.left, scope, name);
          const ColumnMeta rm = InferMeta(*b.right, scope, name);
          meta.dtype = PromoteTypes(lm.dtype, rm.dtype);
          return meta;
        }
      }
    }
    case exec::BoundExprKind::kUnary: {
      const auto& u = static_cast<const BoundUnary&>(e);
      if (u.op == UnaryOp::kNot) {
        meta.dtype = DType::kBool;
        return meta;
      }
      meta = InferMeta(*u.operand, scope, name);
      meta.name = name;
      return meta;
    }
    case exec::BoundExprKind::kUdfCall: {
      const auto& call = static_cast<const BoundUdfCall&>(e);
      udf::DeclaredColumn decl{name, call.fn->return_type};
      return MetaFromDeclared(decl);
    }
    case exec::BoundExprKind::kCase: {
      const auto& c = static_cast<const BoundCase&>(e);
      meta = InferMeta(*c.branches.front().second, scope, name);
      meta.name = name;
      return meta;
    }
    case exec::BoundExprKind::kParameter:
      // Parameter values are typed at Run() time, so assume the widest
      // numeric type here: float64 keeps int64 bindings exact (up to
      // 2^53) when this meta decides an aggregate's output column dtype.
      // Comparisons and arithmetic adapt to the actual bound value.
      meta.dtype = DType::kFloat64;
      return meta;
    case exec::BoundExprKind::kVectorSim:
      meta.dtype = DType::kFloat32;  // one similarity score per row
      return meta;
  }
  return meta;
}

StatusOr<BoundExprPtr> BinderImpl::BindPostAgg(
    const Expr& e, const Scope& input_scope,
    const std::vector<std::string>& group_strings, std::vector<AggDef>& aggs,
    const Scope& agg_scope) {
  // An expression identical to a GROUP BY expression references its column.
  const std::string repr = e.ToString();
  for (size_t g = 0; g < group_strings.size(); ++g) {
    if (EqualsIgnoreCase(repr, group_strings[g])) {
      auto ref = std::make_unique<BoundColumnRef>(static_cast<int64_t>(g));
      ref->display_name = repr;
      return BoundExprPtr(std::move(ref));
    }
  }
  switch (e.kind) {
    case ExprKind::kFunctionCall: {
      const auto& f = static_cast<const FunctionCallExpr&>(e);
      if (IsAggregateName(f.function_name)) {
        TDP_ASSIGN_OR_RETURN(AggKind kind,
                             AggKindFromName(f.function_name, f.is_star_arg));
        if (!f.is_star_arg && f.args.size() != 1) {
          return Status::BindError("aggregate takes exactly one argument: " +
                                   f.ToString());
        }
        // Deduplicate identical aggregate calls.
        for (size_t i = 0; i < aggs.size(); ++i) {
          if (EqualsIgnoreCase(aggs[i].name, repr)) {
            auto ref = std::make_unique<BoundColumnRef>(
                static_cast<int64_t>(group_strings.size() + i));
            ref->display_name = repr;
            return BoundExprPtr(std::move(ref));
          }
        }
        AggDef def;
        def.kind = kind;
        def.distinct = f.distinct;
        def.name = repr;
        if (!f.is_star_arg) {
          TDP_ASSIGN_OR_RETURN(def.arg, BindExpr(*f.args[0], input_scope));
        }
        aggs.push_back(std::move(def));
        auto ref = std::make_unique<BoundColumnRef>(
            static_cast<int64_t>(group_strings.size() + aggs.size() - 1));
        ref->display_name = repr;
        return BoundExprPtr(std::move(ref));
      }
      if (IsVectorSimName(f.function_name)) {
        return Status::BindError(
            f.function_name +
            " is not allowed in an aggregated SELECT (similarity is "
            "row-level; compute it before grouping)");
      }
      // Scalar UDF over post-aggregation values.
      const udf::ScalarFunction* fn = registry_.FindScalar(f.function_name);
      if (fn == nullptr) {
        return Status::BindError("unknown function: " + f.function_name);
      }
      auto bound = std::make_unique<BoundUdfCall>();
      bound->fn = fn;
      for (const ExprPtr& arg : f.args) {
        TDP_ASSIGN_OR_RETURN(
            BoundExprPtr bound_arg,
            BindPostAgg(*arg, input_scope, group_strings, aggs, agg_scope));
        bound->args.push_back(std::move(bound_arg));
      }
      bound->display_name = repr;
      return BoundExprPtr(std::move(bound));
    }
    case ExprKind::kBinary: {
      const auto& b = static_cast<const BinaryExpr&>(e);
      TDP_ASSIGN_OR_RETURN(
          BoundExprPtr left,
          BindPostAgg(*b.left, input_scope, group_strings, aggs, agg_scope));
      TDP_ASSIGN_OR_RETURN(
          BoundExprPtr right,
          BindPostAgg(*b.right, input_scope, group_strings, aggs, agg_scope));
      auto bound = std::make_unique<BoundBinary>(b.op, std::move(left),
                                                 std::move(right));
      bound->display_name = repr;
      return BoundExprPtr(std::move(bound));
    }
    case ExprKind::kUnary: {
      const auto& u = static_cast<const UnaryExpr&>(e);
      TDP_ASSIGN_OR_RETURN(BoundExprPtr operand,
                           BindPostAgg(*u.operand, input_scope, group_strings,
                                       aggs, agg_scope));
      auto bound = std::make_unique<BoundUnary>(u.op, std::move(operand));
      bound->display_name = repr;
      return BoundExprPtr(std::move(bound));
    }
    case ExprKind::kLiteral:
    case ExprKind::kParameter:
      return BindExpr(e, agg_scope);
    case ExprKind::kColumnRef:
      return Status::BindError("column " + repr +
                               " must appear in GROUP BY or an aggregate");
    default:
      return Status::BindError(
          "unsupported expression in aggregated SELECT: " + repr);
  }
}

namespace {

// Output-column metadata for an aggregate definition.
ColumnMeta AggOutputMeta(const AggDef& def, DType arg_dtype) {
  ColumnMeta meta;
  meta.name = def.name;
  switch (def.kind) {
    case AggKind::kCountStar:
    case AggKind::kCount:
      meta.dtype = DType::kInt64;
      break;
    case AggKind::kAvg:
      meta.dtype = DType::kFloat32;
      break;
    default:
      meta.dtype = arg_dtype == DType::kBool ? DType::kInt64 : arg_dtype;
      break;
  }
  return meta;
}

}  // namespace

StatusOr<LogicalNodePtr> BinderImpl::BindSelect(const SelectStatement& stmt) {
  LogicalNodePtr node;
  Scope scope;

  if (stmt.from) {
    TDP_ASSIGN_OR_RETURN(auto bound_from, BindTableRef(*stmt.from));
    node = std::move(bound_from.first);
    scope = std::move(bound_from.second);
  }

  // WHERE.
  if (stmt.where) {
    if (!node) return Status::BindError("WHERE requires a FROM clause");
    if (ContainsAggregate(*stmt.where)) {
      return Status::BindError("aggregates are not allowed in WHERE");
    }
    auto filter = std::make_unique<FilterNode>();
    TDP_ASSIGN_OR_RETURN(filter->predicate, BindExpr(*stmt.where, scope));
    filter->schema = scope.schema;
    filter->children.push_back(std::move(node));
    node = std::move(filter);
  }

  // Detect aggregation.
  bool has_aggregates = !stmt.group_by.empty();
  for (const SelectItem& item : stmt.select_list) {
    if (item.expr->kind != ExprKind::kStar &&
        ContainsAggregate(*item.expr)) {
      has_aggregates = true;
    }
  }
  if (stmt.having) has_aggregates = true;

  Scope output_scope;
  // Retained handles for ORDER BY fallback binding (hidden sort columns).
  ProjectNode* project_ptr = nullptr;
  AggregateNode* agg_ptr = nullptr;
  std::vector<LogicalNode*> post_agg_chain;  // nodes whose schema must grow
  std::vector<std::string> group_strings;
  Scope agg_scope;

  if (has_aggregates) {
    if (!node) return Status::BindError("aggregation requires FROM");
    auto agg = std::make_unique<AggregateNode>();
    for (const ExprPtr& g : stmt.group_by) {
      TDP_ASSIGN_OR_RETURN(BoundExprPtr bound, BindExpr(*g, scope));
      group_strings.push_back(g->ToString());
      agg->group_names.push_back(g->ToString());
      agg->group_exprs.push_back(std::move(bound));
    }

    // Bind SELECT and HAVING, populating agg->aggregates.
    std::vector<AggDef> aggs;
    for (size_t g = 0; g < agg->group_exprs.size(); ++g) {
      agg_scope.schema.push_back(InferMeta(*agg->group_exprs[g], scope,
                                           agg->group_names[g]));
      agg_scope.qualifiers.emplace_back();
    }

    std::vector<BoundExprPtr> final_exprs;
    std::vector<std::string> final_names;
    for (const SelectItem& item : stmt.select_list) {
      if (item.expr->kind == ExprKind::kStar) {
        return Status::BindError("SELECT * cannot be combined with GROUP BY");
      }
      TDP_ASSIGN_OR_RETURN(
          BoundExprPtr bound,
          BindPostAgg(*item.expr, scope, group_strings, aggs, agg_scope));
      final_names.push_back(item.alias.empty() ? item.expr->ToString()
                                               : item.alias);
      final_exprs.push_back(std::move(bound));
    }

    BoundExprPtr having_bound;
    if (stmt.having) {
      TDP_ASSIGN_OR_RETURN(
          having_bound,
          BindPostAgg(*stmt.having, scope, group_strings, aggs, agg_scope));
    }

    // Aggregate schema: groups ++ aggs.
    agg->schema = agg_scope.schema;
    for (const AggDef& def : aggs) {
      agg->schema.push_back(AggOutputMeta(
          def, def.arg ? InferMeta(*def.arg, scope, def.name).dtype
                       : DType::kFloat32));
    }
    agg->aggregates = std::move(aggs);
    agg->children.push_back(std::move(node));

    Scope post_scope;
    post_scope.schema = agg->schema;
    post_scope.qualifiers.assign(agg->schema.size(), "");
    agg_ptr = agg.get();
    node = std::move(agg);

    if (having_bound) {
      auto filter = std::make_unique<FilterNode>();
      filter->predicate = std::move(having_bound);
      filter->schema = post_scope.schema;
      post_agg_chain.push_back(filter.get());
      filter->children.push_back(std::move(node));
      node = std::move(filter);
    }

    // Final projection over the aggregate output.
    auto project = std::make_unique<ProjectNode>();
    for (size_t i = 0; i < final_exprs.size(); ++i) {
      project->schema.push_back(
          InferMeta(*final_exprs[i], post_scope, final_names[i]));
    }
    project->exprs = std::move(final_exprs);
    project->children.push_back(std::move(node));
    project_ptr = project.get();
    node = std::move(project);

    output_scope.schema = node->schema;
    output_scope.qualifiers.assign(node->schema.size(), "");
  } else {
    // Plain projection.
    auto project = std::make_unique<ProjectNode>();
    for (const SelectItem& item : stmt.select_list) {
      if (item.expr->kind == ExprKind::kStar) {
        if (!node) return Status::BindError("SELECT * requires FROM");
        for (int64_t i = 0; i < scope.size(); ++i) {
          auto ref = std::make_unique<BoundColumnRef>(i);
          ref->display_name = scope.schema[static_cast<size_t>(i)].name;
          project->schema.push_back(scope.schema[static_cast<size_t>(i)]);
          project->exprs.push_back(std::move(ref));
          output_scope.qualifiers.push_back(
              scope.qualifiers[static_cast<size_t>(i)]);
        }
        continue;
      }
      TDP_ASSIGN_OR_RETURN(BoundExprPtr bound, BindExpr(*item.expr, scope));
      // Unaliased plain column refs keep their bare column name (SQL
      // convention: `SELECT s.id` yields a column named "id").
      std::string name = item.alias;
      std::string qualifier;
      if (item.expr->kind == ExprKind::kColumnRef) {
        const auto& cref = static_cast<const ColumnRefExpr&>(*item.expr);
        if (name.empty()) name = cref.column_name;
        const auto& bref = static_cast<const BoundColumnRef&>(*bound);
        qualifier =
            scope.qualifiers[static_cast<size_t>(bref.column_index)];
      }
      if (name.empty()) name = item.expr->ToString();
      project->schema.push_back(InferMeta(*bound, scope, name));
      project->exprs.push_back(std::move(bound));
      output_scope.qualifiers.push_back(qualifier);
    }
    if (node) project->children.push_back(std::move(node));
    project_ptr = project.get();
    node = std::move(project);
    output_scope.schema = node->schema;
  }

  const size_t visible_columns = node->schema.size();

  if (stmt.distinct) {
    auto distinct = std::make_unique<DistinctNode>();
    distinct->schema = node->schema;
    distinct->children.push_back(std::move(node));
    node = std::move(distinct);
  }

  if (!stmt.order_by.empty()) {
    auto sort = std::make_unique<SortNode>();
    bool added_hidden = false;
    for (const OrderByItem& item : stmt.order_by) {
      SortItem bound_item;
      bound_item.descending = item.descending;
      auto direct = BindExpr(*item.expr, output_scope);
      if (direct.ok()) {
        bound_item.expr = std::move(direct).value();
        sort->items.push_back(std::move(bound_item));
        continue;
      }
      // Fallback: the sort key is not in the select list — bind it against
      // the pre-projection scope and carry it as a hidden projected column.
      if (stmt.distinct) {
        return Status::BindError(
            "ORDER BY expressions must appear in the select list when "
            "DISTINCT is used: " + item.expr->ToString());
      }
      BoundExprPtr hidden;
      if (has_aggregates) {
        const size_t aggs_before = agg_ptr->aggregates.size();
        TDP_ASSIGN_OR_RETURN(hidden,
                             BindPostAgg(*item.expr, scope, group_strings,
                                         agg_ptr->aggregates, agg_scope));
        // New aggregates introduced by ORDER BY widen the aggregate (and
        // any HAVING filter) schema.
        for (size_t i = aggs_before; i < agg_ptr->aggregates.size(); ++i) {
          const AggDef& def = agg_ptr->aggregates[i];
          agg_ptr->schema.push_back(AggOutputMeta(
              def, def.arg ? InferMeta(*def.arg, scope, def.name).dtype
                           : DType::kFloat32));
        }
        for (LogicalNode* n : post_agg_chain) n->schema = agg_ptr->schema;
      } else {
        if (!project_ptr->children.empty()) {
          TDP_ASSIGN_OR_RETURN(hidden, BindExpr(*item.expr, scope));
        } else {
          return direct.status();
        }
      }
      const int64_t hidden_index =
          static_cast<int64_t>(project_ptr->exprs.size());
      Scope hidden_scope;
      if (has_aggregates) {
        hidden_scope.schema = agg_ptr->schema;
        hidden_scope.qualifiers.assign(agg_ptr->schema.size(), "");
      } else {
        hidden_scope = scope;
      }
      ColumnMeta hidden_meta = InferMeta(
          *hidden, hidden_scope,
          "__sort_" + std::to_string(sort->items.size()));
      project_ptr->schema.push_back(hidden_meta);
      project_ptr->exprs.push_back(std::move(hidden));
      node->schema = project_ptr->schema;  // node is the project itself
      auto ref = std::make_unique<BoundColumnRef>(hidden_index);
      ref->display_name = hidden_meta.name;
      bound_item.expr = std::move(ref);
      sort->items.push_back(std::move(bound_item));
      added_hidden = true;
    }
    sort->schema = node->schema;
    sort->children.push_back(std::move(node));
    node = std::move(sort);

    if (added_hidden) {
      // Drop the hidden sort columns again.
      auto cleanup = std::make_unique<ProjectNode>();
      for (size_t i = 0; i < visible_columns; ++i) {
        auto ref = std::make_unique<BoundColumnRef>(static_cast<int64_t>(i));
        ref->display_name = node->schema[i].name;
        cleanup->schema.push_back(node->schema[i]);
        cleanup->exprs.push_back(std::move(ref));
      }
      cleanup->children.push_back(std::move(node));
      node = std::move(cleanup);
    }
  }

  if (stmt.limit.has_value() || stmt.offset.has_value()) {
    auto limit = std::make_unique<LimitNode>();
    limit->limit = stmt.limit.value_or(-1);
    limit->offset = stmt.offset.value_or(0);
    limit->schema = node->schema;
    limit->children.push_back(std::move(node));
    node = std::move(limit);
  }

  return node;
}

// ---- Write statements -------------------------------------------------------

StatusOr<std::pair<LogicalNodePtr, BindScope>> BinderImpl::BindWriteTargetScan(
    const std::string& table_name) {
  BaseTableRef ref(table_name);
  return BindBaseTable(ref);
}

StatusOr<LogicalNodePtr> BinderImpl::BindCreateTable(
    const CreateTableStatement& stmt) {
  auto node = std::make_unique<CreateTableNode>();
  node->table_name = stmt.table_name;
  for (const ColumnDef& def : stmt.columns) {
    for (const ColumnMeta& existing : node->table_schema) {
      if (EqualsIgnoreCase(existing.name, def.name)) {
        return Status::BindError("duplicate column name: " + def.name);
      }
    }
    ColumnMeta meta;
    meta.name = def.name;
    int64_t width = 0;
    TDP_RETURN_NOT_OK(ApplyDeclaredTypeName(def, meta, width));
    node->table_schema.push_back(std::move(meta));
    node->tensor_widths.push_back(width);
  }
  node->schema = RowsAffectedSchema();
  return LogicalNodePtr(std::move(node));
}

StatusOr<LogicalNodePtr> BinderImpl::BindInsert(const InsertStatement& stmt) {
  TDP_ASSIGN_OR_RETURN(std::shared_ptr<Table> target,
                       catalog_.GetTable(stmt.table_name));
  const int64_t num_columns = target->num_columns();

  auto node = std::make_unique<InsertNode>();
  node->table_name = stmt.table_name;
  if (stmt.columns.empty()) {
    for (int64_t i = 0; i < num_columns; ++i) node->column_map.push_back(i);
  } else {
    // Explicit list: must name every column exactly once (no defaults),
    // but may reorder — column_map[i] is value position i's target.
    if (static_cast<int64_t>(stmt.columns.size()) != num_columns) {
      return Status::BindError(
          "INSERT must supply every column of " + target->name() + " (" +
          std::to_string(num_columns) + " columns, got " +
          std::to_string(stmt.columns.size()) +
          "; the engine has no default values)");
    }
    std::vector<bool> seen(static_cast<size_t>(num_columns), false);
    for (const std::string& name : stmt.columns) {
      const StatusOr<int64_t> found = target->ColumnIndex(name);
      if (!found.ok()) {
        return Status::BindError("INSERT column " + name +
                                 " does not exist in " + target->name());
      }
      const int64_t index = found.value();
      if (seen[static_cast<size_t>(index)]) {
        return Status::BindError("duplicate INSERT column: " + name);
      }
      seen[static_cast<size_t>(index)] = true;
      node->column_map.push_back(index);
    }
  }

  if (stmt.select != nullptr) {
    TDP_ASSIGN_OR_RETURN(LogicalNodePtr source, BindSelect(*stmt.select));
    if (static_cast<int64_t>(source->schema.size()) != num_columns) {
      return Status::BindError(
          "INSERT ... SELECT arity mismatch: SELECT produces " +
          std::to_string(source->schema.size()) + " columns, " +
          target->name() + " has " + std::to_string(num_columns));
    }
    node->children.push_back(std::move(source));
  } else {
    // VALUES rows bind against an empty scope: literals, parameters and
    // scalar expressions over them — never column references.
    const Scope empty;
    for (const std::vector<ExprPtr>& row : stmt.values) {
      if (static_cast<int64_t>(row.size()) != num_columns) {
        return Status::BindError(
            "INSERT VALUES arity mismatch: row has " +
            std::to_string(row.size()) + " values, " + target->name() +
            " has " + std::to_string(num_columns) + " columns");
      }
      std::vector<BoundExprPtr> bound_row;
      for (const ExprPtr& value : row) {
        TDP_ASSIGN_OR_RETURN(BoundExprPtr bound, BindExpr(*value, empty));
        bound_row.push_back(std::move(bound));
      }
      node->rows.push_back(std::move(bound_row));
    }
  }
  node->schema = RowsAffectedSchema();
  return LogicalNodePtr(std::move(node));
}

StatusOr<LogicalNodePtr> BinderImpl::BindUpdate(const UpdateStatement& stmt) {
  TDP_ASSIGN_OR_RETURN(std::shared_ptr<Table> target,
                       catalog_.GetTable(stmt.table_name));
  TDP_ASSIGN_OR_RETURN(auto scan, BindWriteTargetScan(stmt.table_name));

  auto node = std::make_unique<UpdateNode>();
  node->table_name = stmt.table_name;
  for (const auto& [name, expr] : stmt.assignments) {
    const StatusOr<int64_t> found = target->ColumnIndex(name);
    if (!found.ok()) {
      return Status::BindError("UPDATE assigns unknown column " + name +
                               " of " + target->name());
    }
    const int64_t index = found.value();
    for (const auto& prev : node->assignments) {
      if (prev.first == index) {
        return Status::BindError("column assigned twice in UPDATE: " + name);
      }
    }
    if (ContainsAggregate(*expr)) {
      return Status::BindError("aggregates are not allowed in SET: " +
                               expr->ToString());
    }
    TDP_ASSIGN_OR_RETURN(BoundExprPtr bound, BindExpr(*expr, scan.second));
    node->assignments.emplace_back(index, std::move(bound));
  }
  if (stmt.where != nullptr) {
    if (ContainsAggregate(*stmt.where)) {
      return Status::BindError("aggregates are not allowed in WHERE");
    }
    TDP_ASSIGN_OR_RETURN(node->predicate,
                         BindExpr(*stmt.where, scan.second));
  }
  node->children.push_back(std::move(scan.first));
  node->schema = RowsAffectedSchema();
  return LogicalNodePtr(std::move(node));
}

StatusOr<LogicalNodePtr> BinderImpl::BindDelete(const DeleteStatement& stmt) {
  TDP_ASSIGN_OR_RETURN(auto scan, BindWriteTargetScan(stmt.table_name));
  auto node = std::make_unique<DeleteNode>();
  node->table_name = stmt.table_name;
  if (stmt.where != nullptr) {
    if (ContainsAggregate(*stmt.where)) {
      return Status::BindError("aggregates are not allowed in WHERE");
    }
    TDP_ASSIGN_OR_RETURN(node->predicate,
                         BindExpr(*stmt.where, scan.second));
  }
  node->children.push_back(std::move(scan.first));
  node->schema = RowsAffectedSchema();
  return LogicalNodePtr(std::move(node));
}

StatusOr<LogicalNodePtr> BinderImpl::BindStatement(const Statement& stmt) {
  switch (stmt.kind) {
    case StatementKind::kSelect:
      return BindSelect(static_cast<const SelectStatement&>(stmt));
    case StatementKind::kCreateTable:
      return BindCreateTable(static_cast<const CreateTableStatement&>(stmt));
    case StatementKind::kInsert:
      return BindInsert(static_cast<const InsertStatement&>(stmt));
    case StatementKind::kUpdate:
      return BindUpdate(static_cast<const UpdateStatement&>(stmt));
    case StatementKind::kDelete:
      return BindDelete(static_cast<const DeleteStatement&>(stmt));
  }
  return Status::Internal("unknown statement kind");
}

}  // namespace

StatusOr<plan::LogicalNodePtr> Binder::Bind(const SelectStatement& stmt) {
  BinderImpl impl(catalog_, registry_);
  return impl.BindSelect(stmt);
}

StatusOr<plan::LogicalNodePtr> Binder::Bind(const Statement& stmt) {
  BinderImpl impl(catalog_, registry_);
  return impl.BindStatement(stmt);
}

}  // namespace sql
}  // namespace tdp
