#include "src/sql/lexer.h"

#include <array>
#include <cctype>

#include "src/common/string_util.h"

namespace tdp {
namespace sql {
namespace {

constexpr std::array kKeywords = {
    "SELECT", "FROM",  "WHERE",  "GROUP",  "BY",     "HAVING", "ORDER",
    "LIMIT",  "AS",    "AND",    "OR",     "NOT",    "ASC",    "DESC",
    "JOIN",   "INNER", "LEFT",   "ON",     "COUNT",  "SUM",    "AVG",
    "MIN",    "MAX",   "DISTINCT", "BETWEEN", "IN",  "IS",     "NULL",
    "TRUE",   "FALSE", "CAST",   "CASE",   "WHEN",   "THEN",   "ELSE",
    "END",    "LIKE",  "OFFSET", "UNION",  "ALL",
    // DML / DDL. Type names (INT, TEXT, TENSOR, ...) are deliberately NOT
    // keywords: they only appear in CREATE TABLE column positions, where
    // the parser reads them as identifiers — so columns named `text` or
    // `double` keep working everywhere else.
    "CREATE", "TABLE", "INSERT", "INTO",   "VALUES", "UPDATE", "SET",
    "DELETE",
};

bool IsIdentStart(char c) {
  return std::isalpha(static_cast<unsigned char>(c)) || c == '_';
}
bool IsIdentChar(char c) {
  return std::isalnum(static_cast<unsigned char>(c)) || c == '_';
}

}  // namespace

bool IsKeyword(const std::string& word) {
  const std::string upper = ToUpper(word);
  for (const char* k : kKeywords) {
    if (upper == k) return true;
  }
  return false;
}

StatusOr<std::vector<Token>> Tokenize(const std::string& sql) {
  std::vector<Token> tokens;
  size_t i = 0;
  const size_t n = sql.size();
  while (i < n) {
    const char c = sql[i];
    if (std::isspace(static_cast<unsigned char>(c))) {
      ++i;
      continue;
    }
    // -- line comments
    if (c == '-' && i + 1 < n && sql[i + 1] == '-') {
      while (i < n && sql[i] != '\n') ++i;
      continue;
    }
    Token token;
    token.position = i;
    if (IsIdentStart(c)) {
      size_t j = i;
      while (j < n && IsIdentChar(sql[j])) ++j;
      const std::string word = sql.substr(i, j - i);
      if (IsKeyword(word)) {
        token.type = TokenType::kKeyword;
        token.text = ToUpper(word);
      } else {
        token.type = TokenType::kIdentifier;
        token.text = word;
      }
      i = j;
    } else if (std::isdigit(static_cast<unsigned char>(c)) ||
               (c == '.' && i + 1 < n &&
                std::isdigit(static_cast<unsigned char>(sql[i + 1])))) {
      size_t j = i;
      bool has_dot = false;
      bool has_exp = false;
      while (j < n) {
        const char d = sql[j];
        if (std::isdigit(static_cast<unsigned char>(d))) {
          ++j;
        } else if (d == '.' && !has_dot && !has_exp) {
          has_dot = true;
          ++j;
        } else if ((d == 'e' || d == 'E') && !has_exp && j > i) {
          has_exp = true;
          ++j;
          if (j < n && (sql[j] == '+' || sql[j] == '-')) ++j;
        } else {
          break;
        }
      }
      token.type = TokenType::kNumber;
      token.text = sql.substr(i, j - i);
      token.number_value = std::stod(token.text);
      token.is_integer = !has_dot && !has_exp;
      i = j;
    } else if (c == '\'' || c == '"') {
      const char quote = c;
      size_t j = i + 1;
      std::string value;
      while (j < n && sql[j] != quote) {
        value += sql[j];
        ++j;
      }
      if (j >= n) {
        return Status::ParseError("unterminated string literal at position " +
                                  std::to_string(i));
      }
      token.type = TokenType::kString;
      token.text = value;
      i = j + 1;
    } else {
      switch (c) {
        case ',':
          token.type = TokenType::kComma;
          token.text = ",";
          ++i;
          break;
        case '.':
          token.type = TokenType::kDot;
          token.text = ".";
          ++i;
          break;
        case '(':
          token.type = TokenType::kLeftParen;
          token.text = "(";
          ++i;
          break;
        case ')':
          token.type = TokenType::kRightParen;
          token.text = ")";
          ++i;
          break;
        case '*':
          token.type = TokenType::kStar;
          token.text = "*";
          ++i;
          break;
        case '?':
          token.type = TokenType::kParameter;
          token.text = "?";
          ++i;
          break;
        case '+':
        case '-':
        case '/':
        case '%':
        case '=':
          token.type = TokenType::kOperator;
          token.text = std::string(1, c);
          ++i;
          break;
        case '<':
          token.type = TokenType::kOperator;
          if (i + 1 < n && sql[i + 1] == '=') {
            token.text = "<=";
            i += 2;
          } else if (i + 1 < n && sql[i + 1] == '>') {
            token.text = "<>";
            i += 2;
          } else {
            token.text = "<";
            ++i;
          }
          break;
        case '>':
          token.type = TokenType::kOperator;
          if (i + 1 < n && sql[i + 1] == '=') {
            token.text = ">=";
            i += 2;
          } else {
            token.text = ">";
            ++i;
          }
          break;
        case '!':
          if (i + 1 < n && sql[i + 1] == '=') {
            token.type = TokenType::kOperator;
            token.text = "!=";
            i += 2;
          } else {
            return Status::ParseError("unexpected '!' at position " +
                                      std::to_string(i));
          }
          break;
        default:
          return Status::ParseError(std::string("unexpected character '") +
                                    c + "' at position " + std::to_string(i));
      }
    }
    tokens.push_back(std::move(token));
  }
  Token end;
  end.type = TokenType::kEnd;
  end.position = n;
  tokens.push_back(end);
  return tokens;
}

}  // namespace sql
}  // namespace tdp
