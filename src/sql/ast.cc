#include "src/sql/ast.h"

#include <sstream>

namespace tdp {
namespace sql {

std::string LiteralExpr::ToString() const {
  switch (literal_kind) {
    case LiteralKind::kInteger:
      return std::to_string(static_cast<int64_t>(number_value));
    case LiteralKind::kFloat: {
      std::ostringstream os;
      os << number_value;
      return os.str();
    }
    case LiteralKind::kString:
      return "'" + string_value + "'";
    case LiteralKind::kBoolean:
      return bool_value ? "TRUE" : "FALSE";
    case LiteralKind::kNull:
      return "NULL";
  }
  return "?";
}

std::string_view BinaryOpName(BinaryOp op) {
  switch (op) {
    case BinaryOp::kAdd:
      return "+";
    case BinaryOp::kSub:
      return "-";
    case BinaryOp::kMul:
      return "*";
    case BinaryOp::kDiv:
      return "/";
    case BinaryOp::kMod:
      return "%";
    case BinaryOp::kEq:
      return "=";
    case BinaryOp::kNe:
      return "<>";
    case BinaryOp::kLt:
      return "<";
    case BinaryOp::kLe:
      return "<=";
    case BinaryOp::kGt:
      return ">";
    case BinaryOp::kGe:
      return ">=";
    case BinaryOp::kAnd:
      return "AND";
    case BinaryOp::kOr:
      return "OR";
  }
  return "?";
}

std::string BinaryExpr::ToString() const {
  std::ostringstream os;
  os << "(" << left->ToString() << " " << BinaryOpName(op) << " "
     << right->ToString() << ")";
  return os.str();
}

std::string UnaryExpr::ToString() const {
  return op == UnaryOp::kNeg ? "(-" + operand->ToString() + ")"
                             : "(NOT " + operand->ToString() + ")";
}

std::string FunctionCallExpr::ToString() const {
  std::ostringstream os;
  os << function_name << "(";
  if (distinct) os << "DISTINCT ";
  if (is_star_arg) {
    os << "*";
  } else {
    for (size_t i = 0; i < args.size(); ++i) {
      if (i > 0) os << ", ";
      os << args[i]->ToString();
    }
  }
  os << ")";
  return os.str();
}

std::string CaseExpr::ToString() const {
  std::ostringstream os;
  os << "CASE";
  for (const auto& [when, then] : branches) {
    os << " WHEN " << when->ToString() << " THEN " << then->ToString();
  }
  if (else_expr) os << " ELSE " << else_expr->ToString();
  os << " END";
  return os.str();
}

ExprPtr CloneExpr(const Expr& e) {
  switch (e.kind) {
    case ExprKind::kColumnRef: {
      const auto& c = static_cast<const ColumnRefExpr&>(e);
      return std::make_unique<ColumnRefExpr>(c.table_name, c.column_name);
    }
    case ExprKind::kLiteral: {
      const auto& l = static_cast<const LiteralExpr&>(e);
      auto out = std::make_unique<LiteralExpr>();
      *out = l;
      return out;
    }
    case ExprKind::kBinary: {
      const auto& b = static_cast<const BinaryExpr&>(e);
      return std::make_unique<BinaryExpr>(b.op, CloneExpr(*b.left),
                                          CloneExpr(*b.right));
    }
    case ExprKind::kUnary: {
      const auto& u = static_cast<const UnaryExpr&>(e);
      return std::make_unique<UnaryExpr>(u.op, CloneExpr(*u.operand));
    }
    case ExprKind::kFunctionCall: {
      const auto& f = static_cast<const FunctionCallExpr&>(e);
      auto out = std::make_unique<FunctionCallExpr>();
      out->function_name = f.function_name;
      out->is_star_arg = f.is_star_arg;
      out->distinct = f.distinct;
      for (const auto& a : f.args) out->args.push_back(CloneExpr(*a));
      return out;
    }
    case ExprKind::kStar:
      return std::make_unique<StarExpr>();
    case ExprKind::kCase: {
      const auto& c = static_cast<const CaseExpr&>(e);
      auto out = std::make_unique<CaseExpr>();
      for (const auto& [when, then] : c.branches) {
        out->branches.emplace_back(CloneExpr(*when), CloneExpr(*then));
      }
      if (c.else_expr) out->else_expr = CloneExpr(*c.else_expr);
      return out;
    }
    case ExprKind::kParameter:
      return std::make_unique<ParameterExpr>(
          static_cast<const ParameterExpr&>(e).ordinal);
  }
  return nullptr;
}

}  // namespace sql
}  // namespace tdp
