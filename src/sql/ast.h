#ifndef TDP_SQL_AST_H_
#define TDP_SQL_AST_H_

#include <memory>
#include <optional>
#include <string>
#include <utility>
#include <vector>

namespace tdp {
namespace sql {

// Abstract syntax produced by the parser; consumed by the binder. Nodes use
// a Kind tag + static downcasts (the usual database-engine layout, cf.
// DuckDB) rather than visitors, keeping traversal code local and simple.

// ---- Expressions -----------------------------------------------------------

enum class ExprKind {
  kColumnRef,
  kLiteral,
  kBinary,
  kUnary,
  kFunctionCall,
  kStar,  // COUNT(*) argument / SELECT *
  kCase,
  kParameter,  // '?' prepared-statement placeholder
};

struct Expr {
  explicit Expr(ExprKind kind) : kind(kind) {}
  virtual ~Expr() = default;
  ExprKind kind;

  /// Round-trippable rendering for error messages and plan dumps.
  virtual std::string ToString() const = 0;
};

using ExprPtr = std::unique_ptr<Expr>;

struct ColumnRefExpr : Expr {
  ColumnRefExpr(std::string table, std::string column)
      : Expr(ExprKind::kColumnRef),
        table_name(std::move(table)),
        column_name(std::move(column)) {}
  std::string table_name;  // optional qualifier, may be empty
  std::string column_name;
  std::string ToString() const override {
    return table_name.empty() ? column_name : table_name + "." + column_name;
  }
};

enum class LiteralKind { kInteger, kFloat, kString, kBoolean, kNull };

struct LiteralExpr : Expr {
  LiteralExpr() : Expr(ExprKind::kLiteral) {}
  LiteralKind literal_kind = LiteralKind::kNull;
  double number_value = 0.0;
  std::string string_value;
  bool bool_value = false;
  std::string ToString() const override;
};

enum class BinaryOp {
  kAdd,
  kSub,
  kMul,
  kDiv,
  kMod,
  kEq,
  kNe,
  kLt,
  kLe,
  kGt,
  kGe,
  kAnd,
  kOr,
};

std::string_view BinaryOpName(BinaryOp op);

struct BinaryExpr : Expr {
  BinaryExpr(BinaryOp op, ExprPtr left, ExprPtr right)
      : Expr(ExprKind::kBinary),
        op(op),
        left(std::move(left)),
        right(std::move(right)) {}
  BinaryOp op;
  ExprPtr left;
  ExprPtr right;
  std::string ToString() const override;
};

enum class UnaryOp { kNeg, kNot };

struct UnaryExpr : Expr {
  UnaryExpr(UnaryOp op, ExprPtr operand)
      : Expr(ExprKind::kUnary), op(op), operand(std::move(operand)) {}
  UnaryOp op;
  ExprPtr operand;
  std::string ToString() const override;
};

/// Aggregates (COUNT/SUM/AVG/MIN/MAX) and scalar UDF calls share this node;
/// the binder tells them apart.
struct FunctionCallExpr : Expr {
  FunctionCallExpr() : Expr(ExprKind::kFunctionCall) {}
  std::string function_name;  // lowercased
  std::vector<ExprPtr> args;
  bool is_star_arg = false;  // COUNT(*)
  bool distinct = false;     // COUNT(DISTINCT x)
  std::string ToString() const override;
};

struct StarExpr : Expr {
  StarExpr() : Expr(ExprKind::kStar) {}
  std::string ToString() const override { return "*"; }
};

struct CaseExpr : Expr {
  CaseExpr() : Expr(ExprKind::kCase) {}
  // WHEN condition THEN result pairs; optional ELSE.
  std::vector<std::pair<ExprPtr, ExprPtr>> branches;
  ExprPtr else_expr;  // may be null -> NULL/0
  std::string ToString() const override;
};

/// A `?` placeholder. Ordinals are assigned left-to-right by the parser;
/// values are supplied per execution via `CompiledQuery::Run(params)`.
struct ParameterExpr : Expr {
  explicit ParameterExpr(int64_t ordinal)
      : Expr(ExprKind::kParameter), ordinal(ordinal) {}
  int64_t ordinal;  // 0-based position among the statement's placeholders
  std::string ToString() const override { return "?"; }
};

// ---- Table references ------------------------------------------------------

enum class TableRefKind { kBaseTable, kSubquery, kTableFunction, kJoin };

struct SelectStatement;

struct TableRef {
  explicit TableRef(TableRefKind kind) : kind(kind) {}
  virtual ~TableRef() = default;
  TableRefKind kind;
  std::string alias;  // may be empty
};

using TableRefPtr = std::unique_ptr<TableRef>;

struct BaseTableRef : TableRef {
  explicit BaseTableRef(std::string name)
      : TableRef(TableRefKind::kBaseTable), table_name(std::move(name)) {}
  std::string table_name;
};

struct SubqueryRef : TableRef {
  SubqueryRef() : TableRef(TableRefKind::kSubquery) {}
  std::unique_ptr<SelectStatement> subquery;
};

/// FROM tvf_name(input [, scalar args...]) — the paper's TVF-in-FROM form
/// (Listing 4/6/9). The input is a registered table name or a subquery
/// (`FROM extract_table(SELECT images FROM Document WHERE ...)`).
struct TableFunctionRef : TableRef {
  TableFunctionRef() : TableRef(TableRefKind::kTableFunction) {}
  std::string function_name;       // lowercased
  TableRefPtr input;               // base table or subquery
  std::vector<ExprPtr> extra_args; // literal arguments after the input
};

enum class JoinType { kInner, kLeft };

struct JoinRef : TableRef {
  JoinRef() : TableRef(TableRefKind::kJoin) {}
  JoinType join_type = JoinType::kInner;
  TableRefPtr left;
  TableRefPtr right;
  ExprPtr condition;  // ON expr
};

// ---- Statements -------------------------------------------------------------

enum class StatementKind { kSelect, kCreateTable, kInsert, kUpdate, kDelete };

/// Common base for every parsed statement. `ParseStatement` returns this;
/// callers dispatch on `kind` with static downcasts, same as Expr.
struct Statement {
  explicit Statement(StatementKind kind) : kind(kind) {}
  virtual ~Statement() = default;
  StatementKind kind;
};

using StatementPtr = std::unique_ptr<Statement>;

struct SelectItem {
  ExprPtr expr;
  std::string alias;  // may be empty
};

struct OrderByItem {
  ExprPtr expr;
  bool descending = false;
};

struct SelectStatement : Statement {
  SelectStatement() : Statement(StatementKind::kSelect) {}
  bool distinct = false;
  std::vector<SelectItem> select_list;
  TableRefPtr from;  // may be null (SELECT 1+1)
  ExprPtr where;
  std::vector<ExprPtr> group_by;
  ExprPtr having;
  std::vector<OrderByItem> order_by;
  std::optional<int64_t> limit;
  std::optional<int64_t> offset;
};

/// One `name type` entry in CREATE TABLE. The parser stores the type name
/// verbatim (uppercased); the binder owns the name -> (encoding, dtype)
/// mapping so unknown types surface as bind errors, not parse errors.
struct ColumnDef {
  std::string name;
  std::string type_name;     // INT | BIGINT | FLOAT | REAL | DOUBLE |
                             // TEXT | BOOL | BOOLEAN | TENSOR
  int64_t tensor_width = 0;  // TENSOR(d) only; 0 for scalar types
};

/// CREATE TABLE name (col type, ...).
struct CreateTableStatement : Statement {
  CreateTableStatement() : Statement(StatementKind::kCreateTable) {}
  std::string table_name;
  std::vector<ColumnDef> columns;
};

/// INSERT INTO name [(cols)] VALUES (...), ... | SELECT ... — exactly one
/// of `values` / `select` is populated.
struct InsertStatement : Statement {
  InsertStatement() : Statement(StatementKind::kInsert) {}
  std::string table_name;
  /// Explicit column list; empty means "declared order". The engine has no
  /// default values, so a non-empty list must still name every column.
  std::vector<std::string> columns;
  std::vector<std::vector<ExprPtr>> values;  // VALUES rows
  std::unique_ptr<SelectStatement> select;   // INSERT ... SELECT source
};

/// UPDATE name SET col = expr, ... [WHERE pred].
struct UpdateStatement : Statement {
  UpdateStatement() : Statement(StatementKind::kUpdate) {}
  std::string table_name;
  std::vector<std::pair<std::string, ExprPtr>> assignments;
  ExprPtr where;  // null = every row
};

/// DELETE FROM name [WHERE pred].
struct DeleteStatement : Statement {
  DeleteStatement() : Statement(StatementKind::kDelete) {}
  std::string table_name;
  ExprPtr where;  // null = every row
};

/// Deep structural copy of an expression tree.
ExprPtr CloneExpr(const Expr& e);

}  // namespace sql
}  // namespace tdp

#endif  // TDP_SQL_AST_H_
