#ifndef TDP_SQL_LEXER_H_
#define TDP_SQL_LEXER_H_

#include <string>
#include <vector>

#include "src/common/statusor.h"

namespace tdp {
namespace sql {

enum class TokenType {
  kIdentifier,   // table / column / function names (case-insensitive)
  kKeyword,      // SELECT, FROM, ... (normalized uppercase in `text`)
  kNumber,       // integer or decimal literal
  kString,       // 'quoted' or "quoted" literal (quotes stripped)
  kOperator,     // + - * / % = <> != < <= > >= ||
  kComma,
  kDot,
  kLeftParen,
  kRightParen,
  kStar,         // '*' when used as SELECT *; otherwise kOperator
  kParameter,    // '?' prepared-statement placeholder
  kEnd,
};

struct Token {
  TokenType type;
  std::string text;
  double number_value = 0.0;    // kNumber only
  bool is_integer = false;      // kNumber only
  size_t position = 0;          // byte offset for error messages
};

/// True if `word` (any case) is a reserved SQL keyword.
bool IsKeyword(const std::string& word);

/// Tokenizes `sql`; returns ParseError with position info on bad input.
/// The final token is always kEnd.
StatusOr<std::vector<Token>> Tokenize(const std::string& sql);

}  // namespace sql
}  // namespace tdp

#endif  // TDP_SQL_LEXER_H_
