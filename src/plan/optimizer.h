#ifndef TDP_PLAN_OPTIMIZER_H_
#define TDP_PLAN_OPTIMIZER_H_

#include "src/common/statusor.h"
#include "src/plan/logical_plan.h"

namespace tdp {
class Catalog;

namespace plan {

/// Rule-based plan rewriter (the role Spark/Substrait play for the paper's
/// prototype). Runs after binding, before the plan is wrapped in a
/// `CompiledQuery`. Applied rules, in order:
///
///   1. **Limit-into-sort fusion** — `ORDER BY ... LIMIT k` becomes a
///      top-k sort (`SortNode::fused_limit`), so queries like the paper's
///      top-k image search never materialize the full sorted relation.
///   2. **Filter pushdown through join** — conjuncts referencing only one
///      join side move below the join, shrinking the hashed/probed inputs;
///      cross-side conjuncts stay as the join's residual predicate.
///   3. **Scan projection pruning** — scans read only the columns the rest
///      of the plan references. This matters most when unreferenced
///      columns are image tensors: pruning them skips whole tensor
///      transfers to the execution device.
///   4. **Join build-side choice** (needs `catalog`) — hash joins build
///      over the side with the smaller cardinality estimate (base-table
///      rows discounted by per-predicate selectivity heuristics,
///      `JoinNode::build_left`); the other side streams as the probe.
///   5. **Index top-k rewrite** (needs `catalog`) — a top-k similarity
///      sort (`ORDER BY dot(col, ?) DESC [, tiebreaks] LIMIT k` over a
///      scan, optionally under WHERE filters) becomes an `IndexTopKNode`
///      when the catalog holds a valid vector index on `col`. Filtered
///      searches absorb the predicate and carry a cost-rule strategy
///      (pre_filter / post_filter / brute, chosen from selectivity
///      estimates; `exec::RunOptions::vector_search.strategy` overrides
///      per run). Preconditions and exactness guarantees are documented
///      at the rule; with no usable index (or after the table is
///      re-registered, which invalidates it) the plan keeps the exact
///      Sort+Limit shape.
///
/// All rules are semantics-preserving for both exact and TRAINABLE
/// (soft-operator) execution, so the same optimized plan serves training
/// and inference.
///
/// Rewrites in place; returns the (possibly replaced) root. `catalog`
/// (the binder-time snapshot) supplies table row counts for rule 4; pass
/// null to skip cardinality-based rules.
LogicalNodePtr Optimize(LogicalNodePtr root, const Catalog* catalog);
LogicalNodePtr Optimize(LogicalNodePtr root);

}  // namespace plan
}  // namespace tdp

#endif  // TDP_PLAN_OPTIMIZER_H_
