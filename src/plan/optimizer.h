#ifndef TDP_PLAN_OPTIMIZER_H_
#define TDP_PLAN_OPTIMIZER_H_

#include "src/common/statusor.h"
#include "src/plan/logical_plan.h"

namespace tdp {
namespace plan {

/// Rule-based plan rewriter (the role Spark/Substrait play for the paper's
/// prototype). Applied rules:
///   1. limit-into-sort fusion (top-k sort; ORDER BY ... LIMIT k queries,
///      e.g. the paper's top-k image search, avoid full materialization),
///   2. filter pushdown through join (single-side conjuncts move below),
///   3. scan projection pruning (only referenced columns are read —
///      important when unreferenced columns are image tensors).
/// Rewrites in place; returns the (possibly replaced) root.
LogicalNodePtr Optimize(LogicalNodePtr root);

}  // namespace plan
}  // namespace tdp

#endif  // TDP_PLAN_OPTIMIZER_H_
