#include "src/plan/pipeline.h"

#include <algorithm>
#include <sstream>

#include "src/common/logging.h"

namespace tdp {
namespace plan {
namespace {

/// Invokes `fn` on every scalar-UDF call in the expression tree (recursing
/// through binary/unary/CASE/VectorSim/call-argument subtrees). The single
/// traversal behind the UDF classification predicates and the batch-size
/// computation.
void ForEachUdfCall(
    const exec::BoundExpr& e,
    const std::function<void(const exec::BoundUdfCall&)>& fn) {
  switch (e.kind) {
    case exec::BoundExprKind::kUdfCall: {
      const auto& call = static_cast<const exec::BoundUdfCall&>(e);
      fn(call);
      for (const auto& arg : call.args) ForEachUdfCall(*arg, fn);
      return;
    }
    case exec::BoundExprKind::kBinary: {
      const auto& b = static_cast<const exec::BoundBinary&>(e);
      ForEachUdfCall(*b.left, fn);
      ForEachUdfCall(*b.right, fn);
      return;
    }
    case exec::BoundExprKind::kUnary:
      ForEachUdfCall(*static_cast<const exec::BoundUnary&>(e).operand, fn);
      return;
    case exec::BoundExprKind::kCase: {
      const auto& c = static_cast<const exec::BoundCase&>(e);
      for (const auto& [when, then] : c.branches) {
        ForEachUdfCall(*when, fn);
        ForEachUdfCall(*then, fn);
      }
      if (c.else_expr != nullptr) ForEachUdfCall(*c.else_expr, fn);
      return;
    }
    case exec::BoundExprKind::kVectorSim: {
      const auto& v = static_cast<const exec::BoundVectorSim&>(e);
      ForEachUdfCall(*v.column, fn);
      ForEachUdfCall(*v.query, fn);
      return;
    }
    case exec::BoundExprKind::kColumnRef:
    case exec::BoundExprKind::kLiteral:
    case exec::BoundExprKind::kParameter:
      return;
  }
}

bool ExprUsesUdf(const exec::BoundExpr& e) {
  bool uses = false;
  ForEachUdfCall(e, [&uses](const exec::BoundUdfCall&) { uses = true; });
  return uses;
}

/// Rows per forward pass for `node`'s ModelEval stage: the smallest
/// preferred batch size among its batchable calls (a shared batch must fit
/// the most size-sensitive model), defaulting when none declares one.
int64_t NodeModelBatchRows(const LogicalNode& node) {
  int64_t rows = 0;
  const auto consider = [&rows](int64_t preferred) {
    const int64_t r =
        preferred > 0 ? preferred : udf::kDefaultModelBatchRows;
    rows = rows == 0 ? r : std::min(rows, r);
  };
  if (node.kind == NodeKind::kTvfScan) {
    const auto& tvf = static_cast<const TvfScanNode&>(node);
    if (tvf.fn != nullptr) consider(tvf.fn->preferred_batch_rows);
  } else {
    ForEachExpr(node, [&consider](const exec::BoundExpr& e) {
      ForEachUdfCall(e, [&consider](const exec::BoundUdfCall& call) {
        if (call.fn != nullptr && call.fn->batchable) {
          consider(call.fn->preferred_batch_rows);
        }
      });
    });
  }
  return rows == 0 ? udf::kDefaultModelBatchRows : rows;
}

/// True when `node` is a TvfScan over a batchable (row-local) TVF.
bool IsBatchableTvf(const LogicalNode& node) {
  if (node.kind != NodeKind::kTvfScan) return false;
  const auto& tvf = static_cast<const TvfScanNode&>(node);
  return tvf.fn != nullptr && tvf.fn->batchable;
}

/// Builder state: pipelines are appended depth-first so that every
/// pipeline's dependencies precede it in the vector.
struct Builder {
  std::vector<Pipeline> pipelines;
  std::vector<std::unique_ptr<LogicalNode>> owned;

  int Push(Pipeline p) {
    p.id = static_cast<int>(pipelines.size());
    pipelines.push_back(std::move(p));
    return pipelines.back().id;
  }

  /// Synthesizes the micro-batch stage streaming `wrapped`'s model calls.
  const LogicalNode* MakeModelEval(const LogicalNode& wrapped) {
    auto me = std::make_unique<ModelEvalNode>();
    me->wrapped = &wrapped;
    me->batch_rows = NodeModelBatchRows(wrapped);
    me->schema = wrapped.schema;
    owned.push_back(std::move(me));
    return owned.back().get();
  }

  /// Fills `p.source` / `p.ops` so that `p`'s stream equals `node`'s
  /// output stream. Appends any breaker pipelines `node`'s subtree needs.
  void BuildStream(const LogicalNode& node, Pipeline& p) {
    switch (node.kind) {
      case NodeKind::kScan:
        p.source = &node;
        return;
      case NodeKind::kFilter:
      case NodeKind::kProject:
        if (node.children.empty()) {
          // FROM-less Project: a one-row source of its own.
          p.source = &node;
          return;
        }
        if (!NodeUsesUdf(node)) {
          BuildStream(*node.children[0], p);
          p.ops.push_back(&node);
          return;
        }
        if (!NodeUsesNonBatchableUdf(node)) {
          // Every model call is batchable (row-local), so the operator
          // streams: slice each morsel into fixed-size tensor batches
          // through a ModelEval stage instead of breaking the pipeline.
          BuildStream(*node.children[0], p);
          p.ops.push_back(MakeModelEval(node));
          return;
        }
        break;  // non-batchable UDF: breaker below.
      case NodeKind::kTvfScan:
        if (IsBatchableTvf(node) && !node.children.empty()) {
          // Row-local TVF (each input row's output rows depend only on
          // that row): stream the input and micro-batch the function.
          BuildStream(*node.children[0], p);
          p.ops.push_back(MakeModelEval(node));
          return;
        }
        break;  // non-batchable TVF: whole-input breaker below.
      case NodeKind::kJoin:
        if (!NodeUsesUdf(node)) {
          // The build side (right child, or left when the optimizer
          // flipped JoinNode::build_left) is its own pipeline,
          // materialized + hashed before this one probes.
          const int build_id = BuildJoinBuildSide(node);
          BuildStream(ProbeChild(node), p);
          p.dependencies.push_back(build_id);
          p.ops.push_back(&node);
          return;
        }
        // UDF-bearing residual: the UDF body is a whole-batch tensor
        // program, so the probe must run over the assembled joined
        // relation, never per morsel — breaker below.
        break;
      default:
        break;
    }
    // Breaker: materialize `node`'s output with its own pipeline and use
    // it as this pipeline's source.
    const int id = BuildBreaker(node);
    p.source = &node;
    p.source_pipeline = id;
    p.dependencies.push_back(id);
  }

  static const LogicalNode& BuildChild(const LogicalNode& join) {
    const bool build_left = static_cast<const JoinNode&>(join).build_left;
    return *join.children[build_left ? 0 : 1];
  }
  static const LogicalNode& ProbeChild(const LogicalNode& join) {
    const bool build_left = static_cast<const JoinNode&>(join).build_left;
    return *join.children[build_left ? 1 : 0];
  }

  /// Appends the pipeline materializing + hashing `node`'s build side.
  int BuildJoinBuildSide(const LogicalNode& node) {
    Pipeline build;
    build.sink = &node;
    build.sink_kind = SinkKind::kJoinBuild;
    BuildStream(BuildChild(node), build);
    return Push(std::move(build));
  }

  /// Appends the pipeline that produces breaker `node`'s output chunk.
  int BuildBreaker(const LogicalNode& node) {
    Pipeline bp;
    bp.sink = &node;
    switch (node.kind) {
      case NodeKind::kAggregate:
        // A UDF among the group keys / aggregate arguments is evaluated
        // over the whole relation, so the per-morsel input evaluation is
        // off the table: materialize the stream and evaluate at the
        // breaker. (Deliberately conservative — even batchable UDFs break
        // here: the aggregate's partial-state merge is keyed on the
        // evaluated inputs, and micro-batching buys nothing once the
        // relation is materialized anyway.)
        bp.sink_kind = NodeUsesUdf(node) ? SinkKind::kMaterialize
                                         : SinkKind::kAggregate;
        break;
      case NodeKind::kLimit:
        bp.sink_kind = SinkKind::kLimit;
        break;
      case NodeKind::kJoin:
        // UDF-bearing residual (see BuildStream): stream the probe side
        // into a materialized relation, probe whole at the breaker.
        bp.sink_kind = SinkKind::kMaterialize;
        bp.dependencies.push_back(BuildJoinBuildSide(node));
        BuildStream(ProbeChild(node), bp);
        return Push(std::move(bp));
      case NodeKind::kSort:
      case NodeKind::kDistinct:
      case NodeKind::kTvfScan:  // non-batchable (batchable TVFs stream)
      case NodeKind::kFilter:   // non-batchable UDF-bearing
      case NodeKind::kProject:  // non-batchable UDF-bearing
      // IndexTopK needs its whole input materialized (candidate row ids
      // index into the full scan), and its output is a fresh ordered
      // relation — a textbook breaker.
      case NodeKind::kIndexTopK:
      // DML statements are root breakers: the write delta is computed over
      // the assembled input (the full-table scan for UPDATE/DELETE, the
      // SELECT source for INSERT ... SELECT) and applied exactly once at
      // the breaker. CreateTable and INSERT ... VALUES are childless — the
      // breaker runs over an empty input stream (source == nullptr).
      case NodeKind::kCreateTable:
      case NodeKind::kInsert:
      case NodeKind::kUpdate:
      case NodeKind::kDelete:
        bp.sink_kind = SinkKind::kMaterialize;
        break;
      default:
        TDP_LOG(Fatal) << "node kind cannot be a pipeline breaker: "
                       << NodeKindName(node.kind);
    }
    if (node.children.empty()) {
      TDP_CHECK(node.kind == NodeKind::kCreateTable ||
                node.kind == NodeKind::kInsert)
          << "childless breaker: " << NodeKindName(node.kind);
    } else {
      BuildStream(*node.children[0], bp);
    }
    return Push(std::move(bp));
  }
};

}  // namespace

std::string_view SinkKindName(SinkKind kind) {
  switch (kind) {
    case SinkKind::kResult:
      return "result";
    case SinkKind::kMaterialize:
      return "materialize";
    case SinkKind::kAggregate:
      return "aggregate";
    case SinkKind::kJoinBuild:
      return "join-build";
    case SinkKind::kLimit:
      return "limit";
  }
  return "unknown";
}

bool NodeUsesUdf(const LogicalNode& node) {
  bool uses = false;
  ForEachExpr(node, [&uses](const exec::BoundExpr& e) {
    if (ExprUsesUdf(e)) uses = true;
  });
  return uses;
}

bool NodeUsesNonBatchableUdf(const LogicalNode& node) {
  if (node.kind == NodeKind::kTvfScan) return !IsBatchableTvf(node);
  bool uses = false;
  ForEachExpr(node, [&uses](const exec::BoundExpr& e) {
    ForEachUdfCall(e, [&uses](const exec::BoundUdfCall& call) {
      if (call.fn == nullptr || !call.fn->batchable) uses = true;
    });
  });
  return uses;
}

PipelinePlan BuildPipelines(const LogicalNode& root) {
  Builder builder;
  Pipeline result;
  builder.BuildStream(root, result);
  result.sink_kind = SinkKind::kResult;
  result.sink = nullptr;
  builder.Push(std::move(result));
  return PipelinePlan{std::move(builder.pipelines),
                      std::move(builder.owned)};
}

std::string PipelinePlan::ToString() const {
  std::ostringstream os;
  for (const Pipeline& p : pipelines) {
    os << "Pipeline " << p.id << " [";
    if (p.sink_kind == SinkKind::kResult) {
      os << "result";
    } else {
      os << SinkKindName(p.sink_kind) << " for " << p.sink->Describe();
    }
    os << "]: ";
    if (p.source == nullptr) {
      os << "<none>";
    } else if (p.source_pipeline >= 0) {
      os << "Materialized(" << p.source->Describe() << ")";
    } else {
      os << p.source->Describe();
    }
    for (const LogicalNode* op : p.ops) {
      os << " -> ";
      if (op->kind == NodeKind::kJoin) {
        os << "Probe(" << op->Describe() << ")";
      } else {
        os << op->Describe();
      }
    }
    if (!p.dependencies.empty()) {
      os << "  (deps:";
      for (int d : p.dependencies) os << " " << d;
      os << ")";
    }
    os << "\n";
  }
  return os.str();
}

}  // namespace plan
}  // namespace tdp
