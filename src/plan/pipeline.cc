#include "src/plan/pipeline.h"

#include <sstream>

#include "src/common/logging.h"

namespace tdp {
namespace plan {
namespace {

bool ExprUsesUdf(const exec::BoundExpr& e) {
  switch (e.kind) {
    case exec::BoundExprKind::kUdfCall:
      return true;
    case exec::BoundExprKind::kBinary: {
      const auto& b = static_cast<const exec::BoundBinary&>(e);
      return ExprUsesUdf(*b.left) || ExprUsesUdf(*b.right);
    }
    case exec::BoundExprKind::kUnary:
      return ExprUsesUdf(*static_cast<const exec::BoundUnary&>(e).operand);
    case exec::BoundExprKind::kCase: {
      const auto& c = static_cast<const exec::BoundCase&>(e);
      for (const auto& [when, then] : c.branches) {
        if (ExprUsesUdf(*when) || ExprUsesUdf(*then)) return true;
      }
      return c.else_expr != nullptr && ExprUsesUdf(*c.else_expr);
    }
    case exec::BoundExprKind::kVectorSim: {
      const auto& v = static_cast<const exec::BoundVectorSim&>(e);
      return ExprUsesUdf(*v.column) || ExprUsesUdf(*v.query);
    }
    case exec::BoundExprKind::kColumnRef:
    case exec::BoundExprKind::kLiteral:
    case exec::BoundExprKind::kParameter:
      return false;
  }
  return false;
}

/// Builder state: pipelines are appended depth-first so that every
/// pipeline's dependencies precede it in the vector.
struct Builder {
  std::vector<Pipeline> pipelines;

  int Push(Pipeline p) {
    p.id = static_cast<int>(pipelines.size());
    pipelines.push_back(std::move(p));
    return pipelines.back().id;
  }

  /// Fills `p.source` / `p.ops` so that `p`'s stream equals `node`'s
  /// output stream. Appends any breaker pipelines `node`'s subtree needs.
  void BuildStream(const LogicalNode& node, Pipeline& p) {
    switch (node.kind) {
      case NodeKind::kScan:
        p.source = &node;
        return;
      case NodeKind::kFilter:
      case NodeKind::kProject:
        if (node.children.empty()) {
          // FROM-less Project: a one-row source of its own.
          p.source = &node;
          return;
        }
        if (!NodeUsesUdf(node)) {
          BuildStream(*node.children[0], p);
          p.ops.push_back(&node);
          return;
        }
        break;  // UDF-bearing op: breaker below.
      case NodeKind::kJoin:
        if (!NodeUsesUdf(node)) {
          // The build side (right child, or left when the optimizer
          // flipped JoinNode::build_left) is its own pipeline,
          // materialized + hashed before this one probes.
          const int build_id = BuildJoinBuildSide(node);
          BuildStream(ProbeChild(node), p);
          p.dependencies.push_back(build_id);
          p.ops.push_back(&node);
          return;
        }
        // UDF-bearing residual: the UDF body is a whole-batch tensor
        // program, so the probe must run over the assembled joined
        // relation, never per morsel — breaker below.
        break;
      default:
        break;
    }
    // Breaker: materialize `node`'s output with its own pipeline and use
    // it as this pipeline's source.
    const int id = BuildBreaker(node);
    p.source = &node;
    p.source_pipeline = id;
    p.dependencies.push_back(id);
  }

  static const LogicalNode& BuildChild(const LogicalNode& join) {
    const bool build_left = static_cast<const JoinNode&>(join).build_left;
    return *join.children[build_left ? 0 : 1];
  }
  static const LogicalNode& ProbeChild(const LogicalNode& join) {
    const bool build_left = static_cast<const JoinNode&>(join).build_left;
    return *join.children[build_left ? 1 : 0];
  }

  /// Appends the pipeline materializing + hashing `node`'s build side.
  int BuildJoinBuildSide(const LogicalNode& node) {
    Pipeline build;
    build.sink = &node;
    build.sink_kind = SinkKind::kJoinBuild;
    BuildStream(BuildChild(node), build);
    return Push(std::move(build));
  }

  /// Appends the pipeline that produces breaker `node`'s output chunk.
  int BuildBreaker(const LogicalNode& node) {
    Pipeline bp;
    bp.sink = &node;
    switch (node.kind) {
      case NodeKind::kAggregate:
        // A UDF among the group keys / aggregate arguments must be
        // evaluated over the whole relation (UDF bodies are batch
        // programs), so the per-morsel input evaluation is off the table:
        // materialize the stream and evaluate at the breaker.
        bp.sink_kind = NodeUsesUdf(node) ? SinkKind::kMaterialize
                                         : SinkKind::kAggregate;
        break;
      case NodeKind::kLimit:
        bp.sink_kind = SinkKind::kLimit;
        break;
      case NodeKind::kJoin:
        // UDF-bearing residual (see BuildStream): stream the probe side
        // into a materialized relation, probe whole at the breaker.
        bp.sink_kind = SinkKind::kMaterialize;
        bp.dependencies.push_back(BuildJoinBuildSide(node));
        BuildStream(ProbeChild(node), bp);
        return Push(std::move(bp));
      case NodeKind::kSort:
      case NodeKind::kDistinct:
      case NodeKind::kTvfScan:
      case NodeKind::kFilter:   // UDF-bearing
      case NodeKind::kProject:  // UDF-bearing
      // IndexTopK needs its whole input materialized (candidate row ids
      // index into the full scan), and its output is a fresh ordered
      // relation — a textbook breaker.
      case NodeKind::kIndexTopK:
      // DML statements are root breakers: the write delta is computed over
      // the assembled input (the full-table scan for UPDATE/DELETE, the
      // SELECT source for INSERT ... SELECT) and applied exactly once at
      // the breaker. CreateTable and INSERT ... VALUES are childless — the
      // breaker runs over an empty input stream (source == nullptr).
      case NodeKind::kCreateTable:
      case NodeKind::kInsert:
      case NodeKind::kUpdate:
      case NodeKind::kDelete:
        bp.sink_kind = SinkKind::kMaterialize;
        break;
      default:
        TDP_LOG(Fatal) << "node kind cannot be a pipeline breaker: "
                       << NodeKindName(node.kind);
    }
    if (node.children.empty()) {
      TDP_CHECK(node.kind == NodeKind::kCreateTable ||
                node.kind == NodeKind::kInsert)
          << "childless breaker: " << NodeKindName(node.kind);
    } else {
      BuildStream(*node.children[0], bp);
    }
    return Push(std::move(bp));
  }
};

}  // namespace

std::string_view SinkKindName(SinkKind kind) {
  switch (kind) {
    case SinkKind::kResult:
      return "result";
    case SinkKind::kMaterialize:
      return "materialize";
    case SinkKind::kAggregate:
      return "aggregate";
    case SinkKind::kJoinBuild:
      return "join-build";
    case SinkKind::kLimit:
      return "limit";
  }
  return "unknown";
}

bool NodeUsesUdf(const LogicalNode& node) {
  bool uses = false;
  ForEachExpr(node, [&uses](const exec::BoundExpr& e) {
    if (ExprUsesUdf(e)) uses = true;
  });
  return uses;
}

PipelinePlan BuildPipelines(const LogicalNode& root) {
  Builder builder;
  Pipeline result;
  builder.BuildStream(root, result);
  result.sink_kind = SinkKind::kResult;
  result.sink = nullptr;
  builder.Push(std::move(result));
  return PipelinePlan{std::move(builder.pipelines)};
}

std::string PipelinePlan::ToString() const {
  std::ostringstream os;
  for (const Pipeline& p : pipelines) {
    os << "Pipeline " << p.id << " [";
    if (p.sink_kind == SinkKind::kResult) {
      os << "result";
    } else {
      os << SinkKindName(p.sink_kind) << " for " << p.sink->Describe();
    }
    os << "]: ";
    if (p.source == nullptr) {
      os << "<none>";
    } else if (p.source_pipeline >= 0) {
      os << "Materialized(" << p.source->Describe() << ")";
    } else {
      os << p.source->Describe();
    }
    for (const LogicalNode* op : p.ops) {
      os << " -> ";
      if (op->kind == NodeKind::kJoin) {
        os << "Probe(" << op->Describe() << ")";
      } else {
        os << op->Describe();
      }
    }
    if (!p.dependencies.empty()) {
      os << "  (deps:";
      for (int d : p.dependencies) os << " " << d;
      os << ")";
    }
    os << "\n";
  }
  return os.str();
}

}  // namespace plan
}  // namespace tdp
