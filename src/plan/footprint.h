#ifndef TDP_PLAN_FOOTPRINT_H_
#define TDP_PLAN_FOOTPRINT_H_

#include <cstdint>

#include "src/plan/logical_plan.h"
#include "src/storage/catalog.h"

namespace tdp {
namespace plan {

/// Static (pre-execution) resource estimate for one compiled plan against
/// one catalog state. Deliberately coarse and deliberately pessimistic:
/// the serving front end uses `peak_breaker_bytes` only to PRE-REJECT
/// queries that could not possibly fit an admission ceiling — the
/// per-query `MemoryBudget` enforced at run time (with spill-to-disk
/// breakers) remains the real backstop, so an over-estimate here costs a
/// shed, never a wrong answer.
struct FootprintEstimate {
  /// Estimated rows produced by the root (no selectivity credit for
  /// filters; joins assume the larger side for equi keys).
  int64_t output_rows = 0;
  /// Largest estimated scratch materialization of any single breaker
  /// (sort, hash-join build, aggregate, distinct, DML delta) in the tree.
  int64_t peak_breaker_bytes = 0;
};

/// Walks the plan bottom-up, sizing each node's output from the catalog's
/// CURRENT table row counts (a missing table estimates as empty — the run
/// itself will surface the real error). Never fails: estimation must be
/// admission-queue cheap and must not depend on executing anything.
FootprintEstimate EstimatePlanFootprint(const LogicalNode& root,
                                        const Catalog& catalog);

}  // namespace plan
}  // namespace tdp

#endif  // TDP_PLAN_FOOTPRINT_H_
