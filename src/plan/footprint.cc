#include "src/plan/footprint.h"

#include <algorithm>

#include "src/tensor/dtype.h"

namespace tdp {
namespace plan {
namespace {

// Estimated bytes per row of a schema. Tensor columns have unknown width
// at plan time — assume a moderate embedding (64 floats); dictionary
// columns carry codes plus amortized string storage.
int64_t RowWidthBytes(const Schema& schema) {
  int64_t bytes = 0;
  for (const ColumnMeta& col : schema) {
    if (col.is_tensor) {
      bytes += 256;
    } else if (col.encoding == Encoding::kDictionary) {
      bytes += 24;
    } else {
      bytes += DTypeSize(col.dtype);
    }
  }
  return std::max<int64_t>(bytes, 1);
}

int64_t SaturatingMul(int64_t a, int64_t b) {
  if (a <= 0 || b <= 0) return 0;
  if (a > (int64_t{1} << 62) / b) return int64_t{1} << 62;
  return a * b;
}

// Returns the node's estimated output rows, folding each breaker's
// estimated scratch into `peak`.
int64_t EstimateNode(const LogicalNode& node, const Catalog& catalog,
                     int64_t* peak) {
  std::vector<int64_t> child_rows;
  child_rows.reserve(node.children.size());
  for (const auto& child : node.children) {
    child_rows.push_back(EstimateNode(*child, catalog, peak));
  }
  const int64_t in_rows = child_rows.empty() ? 0 : child_rows[0];

  switch (node.kind) {
    case NodeKind::kScan: {
      const auto& scan = static_cast<const ScanNode&>(node);
      auto table = catalog.GetTable(scan.table_name);
      return table.ok() ? table.value()->num_rows() : 0;
    }
    case NodeKind::kTvfScan:
    case NodeKind::kFilter:     // no selectivity credit
    case NodeKind::kProject:
    case NodeKind::kModelEval:
      return in_rows;
    case NodeKind::kAggregate: {
      const auto& agg = static_cast<const AggregateNode&>(node);
      const int64_t scratch = SaturatingMul(
          in_rows, 8 * static_cast<int64_t>(agg.group_exprs.size() +
                                            agg.aggregates.size() + 2));
      *peak = std::max(*peak, scratch);
      // Worst case: every row is its own group.
      return agg.group_exprs.empty() ? 1 : in_rows;
    }
    case NodeKind::kJoin: {
      const auto& join = static_cast<const JoinNode&>(node);
      const int64_t left = child_rows.size() > 0 ? child_rows[0] : 0;
      const int64_t right = child_rows.size() > 1 ? child_rows[1] : 0;
      const int64_t build = join.build_left ? left : right;
      const Schema& build_schema = join.build_left
                                       ? node.children[0]->schema
                                       : node.children[1]->schema;
      const int64_t scratch =
          SaturatingMul(build, RowWidthBytes(build_schema) + 48);
      *peak = std::max(*peak, scratch);
      // Equi joins estimate as the larger input (typical FK patterns);
      // pure-residual joins are cartesian.
      if (join.left_keys.empty()) return SaturatingMul(left, right);
      return std::max(left, right);
    }
    case NodeKind::kSort: {
      const auto& sort = static_cast<const SortNode&>(node);
      const int64_t scratch = SaturatingMul(
          in_rows, RowWidthBytes(node.schema) +
                       8 * static_cast<int64_t>(sort.items.size() + 2));
      *peak = std::max(*peak, scratch);
      return sort.fused_limit >= 0 ? std::min(sort.fused_limit, in_rows)
                                   : in_rows;
    }
    case NodeKind::kLimit: {
      const auto& limit = static_cast<const LimitNode&>(node);
      return limit.limit < 0 ? in_rows : std::min(limit.limit, in_rows);
    }
    case NodeKind::kDistinct: {
      const int64_t scratch = SaturatingMul(
          in_rows, 8 * static_cast<int64_t>(node.schema.size() + 1));
      *peak = std::max(*peak, scratch);
      return in_rows;
    }
    case NodeKind::kIndexTopK: {
      const auto& topk = static_cast<const IndexTopKNode&>(node);
      auto table = catalog.GetTable(topk.table_name);
      const int64_t rows = table.ok() ? table.value()->num_rows() : 0;
      *peak = std::max(*peak, SaturatingMul(rows, 16));
      return std::min(topk.k, rows);
    }
    case NodeKind::kCreateTable:
      return 1;
    case NodeKind::kInsert: {
      const auto& insert = static_cast<const InsertNode&>(node);
      const int64_t source_rows =
          node.children.empty() ? static_cast<int64_t>(insert.rows.size())
                                : in_rows;
      // The DML kernel materializes the appended segment.
      *peak = std::max(*peak, SaturatingMul(source_rows, 64));
      return 1;
    }
    case NodeKind::kUpdate:
    case NodeKind::kDelete: {
      // Both materialize per-row deltas over the scanned table.
      *peak = std::max(
          *peak, SaturatingMul(in_rows,
                               node.children.empty()
                                   ? 64
                                   : RowWidthBytes(node.children[0]->schema)));
      return 1;
    }
  }
  return in_rows;
}

}  // namespace

FootprintEstimate EstimatePlanFootprint(const LogicalNode& root,
                                        const Catalog& catalog) {
  FootprintEstimate est;
  est.output_rows = EstimateNode(root, catalog, &est.peak_breaker_bytes);
  return est;
}

}  // namespace plan
}  // namespace tdp
