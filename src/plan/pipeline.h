#ifndef TDP_PLAN_PIPELINE_H_
#define TDP_PLAN_PIPELINE_H_

#include <memory>
#include <string>
#include <string_view>
#include <vector>

#include "src/plan/logical_plan.h"

namespace tdp {
namespace plan {

/// What the streaming executor does with a pipeline's assembled stream.
enum class SinkKind {
  /// Plan root: the assembled stream is the query result.
  kResult,
  /// Feeds a whole-relation breaker: Sort, Distinct, a non-batchable TVF,
  /// or any operator whose expressions call a non-batchable UDF (Filter,
  /// Project, Aggregate keys/args, Join residual) — non-batchable UDF
  /// bodies are whole-batch tensor programs, so they see the full
  /// relation, never a morsel. Batchable (row-local) model calls under a
  /// Filter/Project/TVF stream instead, through a ModelEval stage.
  kMaterialize,
  /// Aggregate consumer: group keys and aggregate arguments are evaluated
  /// per morsel (the partial states), merged in morsel order at the
  /// breaker, then grouped and accumulated with the fixed-block reduction.
  kAggregate,
  /// Build side of a hash join: assembled, then hashed into the join's
  /// build table before the probe pipeline runs.
  kJoinBuild,
  /// LIMIT/OFFSET: morsel outputs are assembled in morsel order with
  /// offset/limit truncation — only the covered prefix is concatenated.
  kLimit,
};

std::string_view SinkKindName(SinkKind kind);

/// One streaming pipeline: a source relation streamed morsel-by-morsel
/// through order-preserving operators into a sink. All pointers reference
/// nodes of the (immutable) optimized plan the pipeline was built from.
struct Pipeline {
  int id = 0;
  /// The source relation: a ScanNode, a breaker node whose materialized
  /// output (produced by `source_pipeline`) seeds this stream, or a
  /// FROM-less Project (a one-row source).
  const LogicalNode* source = nullptr;
  /// Id of the pipeline that materializes `source`'s output; -1 when the
  /// source is a Scan or FROM-less Project (no upstream pipeline).
  int source_pipeline = -1;
  /// Order-preserving streaming operators applied to every morsel, in
  /// execution (bottom-up) order: Filter, Project, Join — a Join entry
  /// means "probe this morsel against the join's build table", with the
  /// build side produced by a dependency pipeline — and ModelEval, a
  /// micro-batch stage (synthesized by the builder, owned by the
  /// PipelinePlan) around a batchable-model-bearing operator.
  std::vector<const LogicalNode*> ops;
  /// The breaker consuming this stream (it "owns" the pipeline's output:
  /// running the pipeline produces `sink`'s output chunk, or the join
  /// build table for kJoinBuild). Null for kResult.
  const LogicalNode* sink = nullptr;
  SinkKind sink_kind = SinkKind::kResult;
  /// Pipelines that must complete first: the source pipeline and the build
  /// pipelines of any joins probed by `ops`.
  std::vector<int> dependencies;
};

/// A plan's pipelines in dependency order: executing front to back always
/// finds every dependency already materialized. The last pipeline is the
/// kResult one.
struct PipelinePlan {
  std::vector<Pipeline> pipelines;
  /// ModelEval stages synthesized by the builder. Pipelines reference
  /// these (and the plan tree's nodes) by raw pointer, so the PipelinePlan
  /// must outlive any execution of its pipelines — CompiledQuery keeps
  /// both alive together.
  std::vector<std::unique_ptr<LogicalNode>> owned;

  /// EXPLAIN PIPELINES-style rendering, e.g. for the two pipelines of a
  /// join query:
  ///
  ///   Pipeline 0 [join-build for Join]: Scan(u) -> Filter
  ///   Pipeline 1 [result]: Scan(t) -> Join(probe) -> Project  (deps: 0)
  std::string ToString() const;
};

/// Groups the optimized plan into streaming pipelines separated by
/// breakers. Breakers are the operators that need (all of) their input
/// before emitting anything: Sort, Aggregate, Distinct, Limit, IndexTopK
/// (candidate ids index into the full scan), the build side of a hash
/// join, non-batchable TVFs, and any Filter/Project whose expressions call
/// a non-batchable scalar UDF (their bodies are whole-batch tensor
/// programs). Everything else streams: Scan, Filter, Project, join probe —
/// and batchable-model-bearing Filter/Project/TVF operators, which stream
/// through a synthesized ModelEval micro-batch stage (row-local model
/// bodies make any batch partition bit-identical to the whole relation).
PipelinePlan BuildPipelines(const LogicalNode& root);

/// True when any expression hanging off `node` contains a scalar UDF call
/// (recursing through binary/unary/CASE/call argument subtrees).
bool NodeUsesUdf(const LogicalNode& node);

/// True when `node` carries a UDF/TVF call that is NOT batchable — the
/// calls that still force breaker semantics.
bool NodeUsesNonBatchableUdf(const LogicalNode& node);

}  // namespace plan
}  // namespace tdp

#endif  // TDP_PLAN_PIPELINE_H_
