#ifndef TDP_PLAN_PIPELINE_H_
#define TDP_PLAN_PIPELINE_H_

#include <string>
#include <string_view>
#include <vector>

#include "src/plan/logical_plan.h"

namespace tdp {
namespace plan {

/// What the streaming executor does with a pipeline's assembled stream.
enum class SinkKind {
  /// Plan root: the assembled stream is the query result.
  kResult,
  /// Feeds a whole-relation breaker: Sort, Distinct, TVF, or any operator
  /// whose expressions call a UDF (Filter, Project, Aggregate keys/args,
  /// Join residual) — UDF bodies are batch tensor programs, so they see
  /// the full relation, never a morsel.
  kMaterialize,
  /// Aggregate consumer: group keys and aggregate arguments are evaluated
  /// per morsel (the partial states), merged in morsel order at the
  /// breaker, then grouped and accumulated with the fixed-block reduction.
  kAggregate,
  /// Build side of a hash join: assembled, then hashed into the join's
  /// build table before the probe pipeline runs.
  kJoinBuild,
  /// LIMIT/OFFSET: morsel outputs are assembled in morsel order with
  /// offset/limit truncation — only the covered prefix is concatenated.
  kLimit,
};

std::string_view SinkKindName(SinkKind kind);

/// One streaming pipeline: a source relation streamed morsel-by-morsel
/// through order-preserving operators into a sink. All pointers reference
/// nodes of the (immutable) optimized plan the pipeline was built from.
struct Pipeline {
  int id = 0;
  /// The source relation: a ScanNode, a breaker node whose materialized
  /// output (produced by `source_pipeline`) seeds this stream, or a
  /// FROM-less Project (a one-row source).
  const LogicalNode* source = nullptr;
  /// Id of the pipeline that materializes `source`'s output; -1 when the
  /// source is a Scan or FROM-less Project (no upstream pipeline).
  int source_pipeline = -1;
  /// Order-preserving streaming operators applied to every morsel, in
  /// execution (bottom-up) order: Filter, Project, and Join — a Join entry
  /// means "probe this morsel against the join's build table", with the
  /// build side produced by a dependency pipeline.
  std::vector<const LogicalNode*> ops;
  /// The breaker consuming this stream (it "owns" the pipeline's output:
  /// running the pipeline produces `sink`'s output chunk, or the join
  /// build table for kJoinBuild). Null for kResult.
  const LogicalNode* sink = nullptr;
  SinkKind sink_kind = SinkKind::kResult;
  /// Pipelines that must complete first: the source pipeline and the build
  /// pipelines of any joins probed by `ops`.
  std::vector<int> dependencies;
};

/// A plan's pipelines in dependency order: executing front to back always
/// finds every dependency already materialized. The last pipeline is the
/// kResult one.
struct PipelinePlan {
  std::vector<Pipeline> pipelines;

  /// EXPLAIN PIPELINES-style rendering, e.g. for the two pipelines of a
  /// join query:
  ///
  ///   Pipeline 0 [join-build for Join]: Scan(u) -> Filter
  ///   Pipeline 1 [result]: Scan(t) -> Join(probe) -> Project  (deps: 0)
  std::string ToString() const;
};

/// Groups the optimized plan into streaming pipelines separated by
/// breakers. Breakers are the operators that need (all of) their input
/// before emitting anything: Sort, Aggregate, Distinct, Limit, IndexTopK
/// (candidate ids index into the full scan), the build side of a hash
/// join, TVFs, and any Filter/Project whose expressions call a scalar UDF
/// (UDF bodies are whole-batch tensor programs). Everything else — Scan,
/// Filter, Project, join probe — streams.
PipelinePlan BuildPipelines(const LogicalNode& root);

/// True when any expression hanging off `node` contains a scalar UDF call
/// (recursing through binary/unary/CASE/call argument subtrees).
bool NodeUsesUdf(const LogicalNode& node);

}  // namespace plan
}  // namespace tdp

#endif  // TDP_PLAN_PIPELINE_H_
