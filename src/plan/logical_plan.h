#ifndef TDP_PLAN_LOGICAL_PLAN_H_
#define TDP_PLAN_LOGICAL_PLAN_H_

#include <functional>
#include <memory>
#include <string>
#include <vector>

#include "src/exec/bound_expr.h"
#include "src/exec/vector_search.h"
#include "src/storage/table.h"
#include "src/udf/registry.h"

namespace tdp {
namespace plan {

/// Compile-time description of one output column of a plan node.
struct ColumnMeta {
  std::string name;
  Encoding encoding = Encoding::kPlain;
  DType dtype = DType::kFloat32;  // payload dtype (codes for dictionary)
  bool is_tensor = false;         // rank >= 2 plain column
};

using Schema = std::vector<ColumnMeta>;

std::string SchemaToString(const Schema& schema);

enum class NodeKind {
  kScan,
  kTvfScan,
  kFilter,
  kProject,
  kAggregate,
  kJoin,
  kSort,
  kLimit,
  kDistinct,
  kIndexTopK,
  kModelEval,
  kCreateTable,
  kInsert,
  kUpdate,
  kDelete,
};

std::string_view NodeKindName(NodeKind kind);

/// Logical (and, in TDP, also physical) plan node. TDP compiles each node
/// to a tensor program at execution; there is no separate physical tree.
struct LogicalNode {
  explicit LogicalNode(NodeKind kind) : kind(kind) {}
  virtual ~LogicalNode() = default;
  NodeKind kind;
  Schema schema;  // output schema
  std::vector<std::unique_ptr<LogicalNode>> children;

  /// Single-line description (without children).
  virtual std::string Describe() const = 0;
  /// Indented full-tree rendering (EXPLAIN output).
  std::string ToString(int indent = 0) const;
};

using LogicalNodePtr = std::unique_ptr<LogicalNode>;

/// Leaf: reads a registered table. The table is re-resolved from the
/// catalog at every Run() so re-registering a table (the paper's training
/// loop re-registers MNIST_Grid each iteration) is picked up without
/// recompilation. `projected_columns` (filled by the optimizer) narrows
/// the scan.
struct ScanNode : LogicalNode {
  ScanNode() : LogicalNode(NodeKind::kScan) {}
  std::string table_name;
  std::vector<int64_t> projected_columns;  // empty = all
  std::string Describe() const override;
};

/// Runs a registered table-valued function over its child's output (a
/// scan, or any subplan when the TVF input is a subquery).
struct TvfScanNode : LogicalNode {
  TvfScanNode() : LogicalNode(NodeKind::kTvfScan) {}
  const udf::TableFunction* fn = nullptr;  // owned by the registry
  std::vector<exec::ScalarValue> args;
  std::string Describe() const override;
};

struct FilterNode : LogicalNode {
  FilterNode() : LogicalNode(NodeKind::kFilter) {}
  exec::BoundExprPtr predicate;
  std::string Describe() const override;
};

struct ProjectNode : LogicalNode {
  ProjectNode() : LogicalNode(NodeKind::kProject) {}
  std::vector<exec::BoundExprPtr> exprs;  // one per output column
  std::string Describe() const override;
};

enum class AggKind { kCountStar, kCount, kSum, kAvg, kMin, kMax };

std::string_view AggKindName(AggKind kind);

struct AggDef {
  AggKind kind = AggKind::kCountStar;
  exec::BoundExprPtr arg;  // null for COUNT(*)
  bool distinct = false;
  std::string name;
};

/// Grouped (or global, when group_exprs empty) aggregation. Output schema:
/// group columns first, aggregate columns after. In trainable mode with PE
/// group keys this node executes as soft_groupby/soft_count (§4).
struct AggregateNode : LogicalNode {
  AggregateNode() : LogicalNode(NodeKind::kAggregate) {}
  std::vector<exec::BoundExprPtr> group_exprs;
  std::vector<std::string> group_names;
  std::vector<AggDef> aggregates;
  std::string Describe() const override;
};

struct JoinNode : LogicalNode {
  JoinNode() : LogicalNode(NodeKind::kJoin) {}
  sql::JoinType join_type = sql::JoinType::kInner;
  // Equi-join keys: column indices into left/right child outputs.
  std::vector<int64_t> left_keys;
  std::vector<int64_t> right_keys;
  // Residual non-equi condition over [left columns ++ right columns].
  exec::BoundExprPtr residual;
  /// Which child the hash table is built over (the other side streams as
  /// the probe). Default: right child. The optimizer flips this when the
  /// left input is estimated smaller (`ChooseJoinBuildSides`), so a tiny
  /// dimension table on the left is hashed rather than materialized as
  /// the probe target. Output schema order (left ++ right) is unaffected.
  bool build_left = false;
  std::string Describe() const override;
};

struct SortItem {
  exec::BoundExprPtr expr;
  bool descending = false;
};

struct SortNode : LogicalNode {
  SortNode() : LogicalNode(NodeKind::kSort) {}
  std::vector<SortItem> items;
  /// When >= 0, a following Limit was fused in (top-k sort).
  int64_t fused_limit = -1;
  std::string Describe() const override;
};

struct LimitNode : LogicalNode {
  LimitNode() : LogicalNode(NodeKind::kLimit) {}
  int64_t limit = -1;  // -1 = unbounded (OFFSET only)
  int64_t offset = 0;
  std::string Describe() const override;
};

struct DistinctNode : LogicalNode {
  DistinctNode() : LogicalNode(NodeKind::kDistinct) {}
  std::string Describe() const override;
};

/// Index-accelerated top-k similarity search: replaces a
/// `Sort(sim DESC, fused k) <- Project(..., sim, ...) <- [Filter* <-]
/// Scan(t)` subtree when the catalog holds a vector index on the scanned
/// embedding column (see `plan::Optimize` rule 5). The absorbed projection
/// lives in `exprs`; `exprs[sim_ordinal]` is the similarity expression the
/// Sort keyed on; absorbed WHERE conjuncts (bound against the scan frame,
/// like `exprs`) live in `predicate` (null when unfiltered). Execution
/// probes the index for candidate rows — under the compile-chosen (or
/// per-run forced) `strategy` when a predicate is present — re-ranks them
/// EXACTLY with `exprs[sim_ordinal]` plus any `extra_keys` (row-local, so
/// candidate-subset scores match full-relation scores bit for bit), and
/// projects the winners. At full probe count the candidate set is every
/// (surviving) row and the result is bit-identical to the exact
/// Filter+Sort+Limit plan it replaced. When the run's catalog snapshot no
/// longer holds a valid index (the table was re-registered after
/// compilation), the operator falls back to that exact plan shape instead
/// of failing.
struct IndexTopKNode : LogicalNode {
  IndexTopKNode() : LogicalNode(NodeKind::kIndexTopK) {}
  std::string table_name;          // scanned table (index lookup key)
  std::string column_name;         // indexed embedding column
  int64_t k = 0;                   // rows to emit (the sort's fused limit)
  int64_t sim_ordinal = 0;         // index of the sim expr in `exprs`
  std::vector<exec::BoundExprPtr> exprs;  // absorbed projection
  /// Absorbed WHERE predicate over the scan frame; null = unfiltered.
  exec::BoundExprPtr predicate;
  /// Cost-rule strategy choice for a filtered search (never kAuto on a
  /// compiled plan; meaningless when `predicate` is null). A run may
  /// override it via `RunOptions::vector_search.strategy`.
  exec::VectorSearchStrategy strategy =
      exec::VectorSearchStrategy::kPostFilter;
  /// Secondary sort keys after the similarity (a multi-key
  /// `ORDER BY sim DESC, tiebreak, ...`): ordinal into `exprs` plus
  /// direction. The sim expression stays the primary key.
  struct ExtraKey {
    int64_t ordinal = 0;
    bool descending = false;
  };
  std::vector<ExtraKey> extra_keys;
  std::string Describe() const override;
};

/// Streaming micro-batch stage around a batchable-model-bearing operator
/// (Filter/Project with only batchable UDF calls, or a batchable TVF).
/// Synthesized by `BuildPipelines` — never produced by the binder — so it
/// appears in EXPLAIN PIPELINES, not in the logical tree. Execution slices
/// each morsel into `batch_rows`-row tensor batches, runs the wrapped
/// operator's forward per batch, and reassembles outputs in slice order;
/// row-locality (the batchable contract) makes the reassembly bit-identical
/// to evaluating the whole morsel at once. `wrapped` points into the
/// compiled plan tree (same lifetime); ModelEvalNode itself is owned by
/// the PipelinePlan that synthesized it.
struct ModelEvalNode : LogicalNode {
  ModelEvalNode() : LogicalNode(NodeKind::kModelEval) {}
  const LogicalNode* wrapped = nullptr;
  int64_t batch_rows = udf::kDefaultModelBatchRows;
  std::string Describe() const override;
};

// ---- DDL / DML nodes --------------------------------------------------------
//
// All four execute as root pipeline breakers in BOTH executors: the write
// delta (appended rows, matching positions, new values) is computed
// against the run's immutable catalog snapshot — concurrent readers are
// never blocked and never see a half-applied write — then installed via
// SharedCatalog::ApplyDmlWrite, whose identity re-check turns a lost
// write-write race into a retryable ExecutionError. Each emits a single
// `rows_affected` int64 row as its result relation.

/// CREATE TABLE t (col TYPE, ...): registers an empty table. `schema` (the
/// node's output) is the rows_affected row; the created table's shape
/// lives in `table_schema` + `tensor_widths`.
struct CreateTableNode : LogicalNode {
  CreateTableNode() : LogicalNode(NodeKind::kCreateTable) {}
  std::string table_name;
  Schema table_schema;  // declared columns (name, encoding, dtype)
  /// Per column: 0 for scalar columns, d for a TENSOR(d) embedding column
  /// (a [n, d] float32 plain column).
  std::vector<int64_t> tensor_widths;
  std::string Describe() const override;
};

/// INSERT INTO t [(cols)] VALUES (...), ... | SELECT ... — VALUES rows
/// live in `rows` (childless); the SELECT form plans its source as
/// children[0] and leaves `rows` empty. `column_map[i]` is the target
/// column index of value position i; a statement must supply every column
/// exactly once (the engine has no default values), but may reorder.
struct InsertNode : LogicalNode {
  InsertNode() : LogicalNode(NodeKind::kInsert) {}
  std::string table_name;
  std::vector<int64_t> column_map;
  std::vector<std::vector<exec::BoundExprPtr>> rows;
  std::string Describe() const override;
};

/// UPDATE t SET col = expr, ... [WHERE pred]: children[0] scans the full
/// table; assignment expressions and the predicate are bound against its
/// schema and evaluated over the OLD rows (standard SQL semantics).
struct UpdateNode : LogicalNode {
  UpdateNode() : LogicalNode(NodeKind::kUpdate) {}
  std::string table_name;
  std::vector<std::pair<int64_t, exec::BoundExprPtr>> assignments;
  exec::BoundExprPtr predicate;  // null = every row
  std::string Describe() const override;
};

/// DELETE FROM t [WHERE pred]: children[0] scans the full table. Executes
/// as a deleted-row bitmap update — no compaction, physical ids stable.
struct DeleteNode : LogicalNode {
  DeleteNode() : LogicalNode(NodeKind::kDelete) {}
  std::string table_name;
  exec::BoundExprPtr predicate;  // null = every row
  std::string Describe() const override;
};

/// Invokes `fn` on every bound expression attached to `node` itself (not
/// its children): filter predicates, project/group/aggregate expressions,
/// join residuals, sort keys. The single authority for "which expressions
/// hang off which node kind" — optimizer rewrites and plan analyses
/// (module collection, parameter counting) all go through it.
void ForEachExpr(const LogicalNode& node,
                 const std::function<void(const exec::BoundExpr&)>& fn);
void ForEachExpr(LogicalNode& node,
                 const std::function<void(exec::BoundExpr&)>& fn);

}  // namespace plan
}  // namespace tdp

#endif  // TDP_PLAN_LOGICAL_PLAN_H_
