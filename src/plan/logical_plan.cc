#include "src/plan/logical_plan.h"

#include <sstream>

namespace tdp {
namespace plan {

std::string SchemaToString(const Schema& schema) {
  std::ostringstream os;
  os << "[";
  for (size_t i = 0; i < schema.size(); ++i) {
    if (i > 0) os << ", ";
    os << schema[i].name;
  }
  os << "]";
  return os.str();
}

std::string_view NodeKindName(NodeKind kind) {
  switch (kind) {
    case NodeKind::kScan:
      return "Scan";
    case NodeKind::kTvfScan:
      return "TvfScan";
    case NodeKind::kFilter:
      return "Filter";
    case NodeKind::kProject:
      return "Project";
    case NodeKind::kAggregate:
      return "Aggregate";
    case NodeKind::kJoin:
      return "Join";
    case NodeKind::kSort:
      return "Sort";
    case NodeKind::kLimit:
      return "Limit";
    case NodeKind::kDistinct:
      return "Distinct";
    case NodeKind::kIndexTopK:
      return "IndexTopK";
    case NodeKind::kModelEval:
      return "ModelEval";
    case NodeKind::kCreateTable:
      return "CreateTable";
    case NodeKind::kInsert:
      return "Insert";
    case NodeKind::kUpdate:
      return "Update";
    case NodeKind::kDelete:
      return "Delete";
  }
  return "Unknown";
}

std::string_view AggKindName(AggKind kind) {
  switch (kind) {
    case AggKind::kCountStar:
      return "count(*)";
    case AggKind::kCount:
      return "count";
    case AggKind::kSum:
      return "sum";
    case AggKind::kAvg:
      return "avg";
    case AggKind::kMin:
      return "min";
    case AggKind::kMax:
      return "max";
  }
  return "?";
}

std::string LogicalNode::ToString(int indent) const {
  std::ostringstream os;
  for (int i = 0; i < indent; ++i) os << "  ";
  os << Describe() << " -> " << SchemaToString(schema) << "\n";
  for (const auto& child : children) os << child->ToString(indent + 1);
  return os.str();
}

std::string ScanNode::Describe() const {
  std::string out = "Scan(" + table_name;
  if (!projected_columns.empty()) {
    out += ", cols=" + std::to_string(projected_columns.size());
  }
  return out + ")";
}

std::string TvfScanNode::Describe() const {
  return "TvfScan(" + (fn != nullptr ? fn->name : "?") + ")";
}

std::string FilterNode::Describe() const {
  return "Filter(" + predicate->display_name + ")";
}

std::string ProjectNode::Describe() const {
  return "Project(" + std::to_string(exprs.size()) + " exprs)";
}

std::string AggregateNode::Describe() const {
  std::ostringstream os;
  os << "Aggregate(groups=" << group_exprs.size() << ", aggs=[";
  for (size_t i = 0; i < aggregates.size(); ++i) {
    if (i > 0) os << ", ";
    os << AggKindName(aggregates[i].kind);
  }
  os << "])";
  return os.str();
}

std::string JoinNode::Describe() const {
  return std::string("Join(") +
         (join_type == sql::JoinType::kInner ? "inner" : "left") +
         ", keys=" + std::to_string(left_keys.size()) +
         (residual ? ", residual" : "") +
         (build_left ? ", build=left" : "") + ")";
}

std::string SortNode::Describe() const {
  std::string out = "Sort(" + std::to_string(items.size()) + " keys";
  if (fused_limit >= 0) out += ", topk=" + std::to_string(fused_limit);
  return out + ")";
}

std::string LimitNode::Describe() const {
  return "Limit(" + std::to_string(limit) + ", offset=" +
         std::to_string(offset) + ")";
}

std::string DistinctNode::Describe() const { return "Distinct"; }

std::string IndexTopKNode::Describe() const {
  // Filtered searches render their cost-rule strategy (and predicate) so
  // EXPLAIN shows which of pre_filter/post_filter/brute the plan chose;
  // the unfiltered rendering is unchanged from PR 5.
  std::string out =
      predicate ? "FilteredIndexTopK(strategy=" +
                      std::string(exec::VectorSearchStrategyName(strategy)) +
                      ", "
                : "IndexTopK(";
  out += table_name + "." + column_name + ", k=" + std::to_string(k) +
         ", sim=" + exprs[static_cast<size_t>(sim_ordinal)]->display_name;
  if (predicate) out += ", where=" + predicate->display_name;
  if (!extra_keys.empty()) {
    out += ", tiebreak=" + std::to_string(extra_keys.size());
  }
  return out + ")";
}

std::string ModelEvalNode::Describe() const {
  return "ModelEval(batch=" + std::to_string(batch_rows) + "): " +
         (wrapped != nullptr ? wrapped->Describe() : std::string("?"));
}

std::string CreateTableNode::Describe() const {
  return "CreateTable(" + table_name + ", " +
         std::to_string(table_schema.size()) + " cols)";
}

std::string InsertNode::Describe() const {
  return "Insert(" + table_name + ", " +
         (children.empty() ? std::to_string(rows.size()) + " rows"
                           : std::string("from select")) +
         ")";
}

std::string UpdateNode::Describe() const {
  return "Update(" + table_name + ", " + std::to_string(assignments.size()) +
         " cols" + (predicate ? ", where" : "") + ")";
}

std::string DeleteNode::Describe() const {
  return "Delete(" + table_name + (predicate ? ", where" : "") + ")";
}

void ForEachExpr(const LogicalNode& node,
                 const std::function<void(const exec::BoundExpr&)>& fn) {
  switch (node.kind) {
    case NodeKind::kFilter:
      fn(*static_cast<const FilterNode&>(node).predicate);
      return;
    case NodeKind::kProject:
      for (const auto& e : static_cast<const ProjectNode&>(node).exprs) {
        fn(*e);
      }
      return;
    case NodeKind::kAggregate: {
      const auto& agg = static_cast<const AggregateNode&>(node);
      for (const auto& e : agg.group_exprs) fn(*e);
      for (const auto& d : agg.aggregates) {
        if (d.arg) fn(*d.arg);
      }
      return;
    }
    case NodeKind::kJoin: {
      const auto& join = static_cast<const JoinNode&>(node);
      if (join.residual) fn(*join.residual);
      return;
    }
    case NodeKind::kSort:
      for (const auto& item : static_cast<const SortNode&>(node).items) {
        fn(*item.expr);
      }
      return;
    case NodeKind::kIndexTopK: {
      const auto& topk = static_cast<const IndexTopKNode&>(node);
      for (const auto& e : topk.exprs) fn(*e);
      if (topk.predicate) fn(*topk.predicate);
      return;
    }
    case NodeKind::kInsert:
      for (const auto& row : static_cast<const InsertNode&>(node).rows) {
        for (const auto& e : row) fn(*e);
      }
      return;
    case NodeKind::kUpdate: {
      const auto& update = static_cast<const UpdateNode&>(node);
      for (const auto& [col, e] : update.assignments) {
        (void)col;
        fn(*e);
      }
      if (update.predicate) fn(*update.predicate);
      return;
    }
    case NodeKind::kDelete: {
      const auto& del = static_cast<const DeleteNode&>(node);
      if (del.predicate) fn(*del.predicate);
      return;
    }
    case NodeKind::kModelEval: {
      // The micro-batch stage owns no expressions of its own; they hang
      // off the operator it wraps.
      const auto& me = static_cast<const ModelEvalNode&>(node);
      if (me.wrapped != nullptr) ForEachExpr(*me.wrapped, fn);
      return;
    }
    case NodeKind::kScan:
    case NodeKind::kTvfScan:
    case NodeKind::kLimit:
    case NodeKind::kDistinct:
    case NodeKind::kCreateTable:
      return;
  }
}

void ForEachExpr(LogicalNode& node,
                 const std::function<void(exec::BoundExpr&)>& fn) {
  // The expression slots of a mutable node are themselves mutable; reuse
  // the const traversal rather than maintaining the switch twice.
  ForEachExpr(static_cast<const LogicalNode&>(node),
              [&fn](const exec::BoundExpr& e) {
                fn(const_cast<exec::BoundExpr&>(e));
              });
}

}  // namespace plan
}  // namespace tdp
