#include "src/plan/optimizer.h"

#include <algorithm>
#include <functional>
#include <limits>
#include <set>

#include "src/plan/pipeline.h"
#include "src/storage/catalog.h"

namespace tdp {
namespace plan {
namespace {

using exec::BoundBinary;
using exec::BoundCase;
using exec::BoundColumnRef;
using exec::BoundExpr;
using exec::BoundExprPtr;
using exec::BoundUdfCall;
using exec::BoundUnary;

// ---- Expression utilities ---------------------------------------------------

void CollectColumnRefs(const BoundExpr& e, std::set<int64_t>& out) {
  switch (e.kind) {
    case exec::BoundExprKind::kColumnRef:
      out.insert(static_cast<const BoundColumnRef&>(e).column_index);
      return;
    case exec::BoundExprKind::kBinary: {
      const auto& b = static_cast<const BoundBinary&>(e);
      CollectColumnRefs(*b.left, out);
      CollectColumnRefs(*b.right, out);
      return;
    }
    case exec::BoundExprKind::kUnary:
      CollectColumnRefs(*static_cast<const BoundUnary&>(e).operand, out);
      return;
    case exec::BoundExprKind::kUdfCall:
      for (const auto& a : static_cast<const BoundUdfCall&>(e).args) {
        CollectColumnRefs(*a, out);
      }
      return;
    case exec::BoundExprKind::kCase: {
      const auto& c = static_cast<const BoundCase&>(e);
      for (const auto& [when, then] : c.branches) {
        CollectColumnRefs(*when, out);
        CollectColumnRefs(*then, out);
      }
      if (c.else_expr) CollectColumnRefs(*c.else_expr, out);
      return;
    }
    case exec::BoundExprKind::kVectorSim: {
      const auto& v = static_cast<const exec::BoundVectorSim&>(e);
      CollectColumnRefs(*v.column, out);
      CollectColumnRefs(*v.query, out);
      return;
    }
    case exec::BoundExprKind::kLiteral:
    case exec::BoundExprKind::kParameter:
      return;
  }
}

void RemapColumnRefs(BoundExpr& e, const std::vector<int64_t>& old_to_new) {
  switch (e.kind) {
    case exec::BoundExprKind::kColumnRef: {
      auto& ref = static_cast<BoundColumnRef&>(e);
      ref.column_index = old_to_new[static_cast<size_t>(ref.column_index)];
      return;
    }
    case exec::BoundExprKind::kBinary: {
      auto& b = static_cast<BoundBinary&>(e);
      RemapColumnRefs(*b.left, old_to_new);
      RemapColumnRefs(*b.right, old_to_new);
      return;
    }
    case exec::BoundExprKind::kUnary:
      RemapColumnRefs(*static_cast<BoundUnary&>(e).operand, old_to_new);
      return;
    case exec::BoundExprKind::kUdfCall:
      for (auto& a : static_cast<BoundUdfCall&>(e).args) {
        RemapColumnRefs(*a, old_to_new);
      }
      return;
    case exec::BoundExprKind::kCase: {
      auto& c = static_cast<BoundCase&>(e);
      for (auto& [when, then] : c.branches) {
        RemapColumnRefs(*when, old_to_new);
        RemapColumnRefs(*then, old_to_new);
      }
      if (c.else_expr) RemapColumnRefs(*c.else_expr, old_to_new);
      return;
    }
    case exec::BoundExprKind::kVectorSim: {
      auto& v = static_cast<exec::BoundVectorSim&>(e);
      RemapColumnRefs(*v.column, old_to_new);
      RemapColumnRefs(*v.query, old_to_new);
      return;
    }
    case exec::BoundExprKind::kLiteral:
    case exec::BoundExprKind::kParameter:
      return;
  }
}

// ---- Rule 1: fuse Limit into Sort -------------------------------------------

LogicalNodePtr FuseLimitIntoSort(LogicalNodePtr node) {
  for (auto& child : node->children) {
    child = FuseLimitIntoSort(std::move(child));
  }
  if (node->kind != NodeKind::kLimit) return node;
  auto& limit = static_cast<LimitNode&>(*node);
  if (limit.limit < 0) return node;
  // Look through the hidden-sort-column cleanup Project, if present.
  LogicalNode* below = limit.children[0].get();
  if (below->kind == NodeKind::kProject && !below->children.empty() &&
      below->children[0]->kind == NodeKind::kSort) {
    below = below->children[0].get();
  }
  if (below->kind != NodeKind::kSort) return node;
  auto& sort = static_cast<SortNode&>(*below);
  // The sort keeps offset+limit rows; the Limit then applies the offset.
  sort.fused_limit = limit.offset + limit.limit;
  if (limit.offset == 0) {
    // The top-k sort already yields exactly `limit` rows, so the Limit node
    // is redundant — drop it (keeping the cleanup projection when present).
    return std::move(node->children[0]);
  }
  return node;
}

// ---- Rule 2: push single-side filter conjuncts below a join -----------------

void SplitConjuncts(BoundExprPtr expr, std::vector<BoundExprPtr>& out) {
  if (expr->kind == exec::BoundExprKind::kBinary) {
    auto* b = static_cast<BoundBinary*>(expr.get());
    if (b->op == sql::BinaryOp::kAnd) {
      SplitConjuncts(std::move(b->left), out);
      SplitConjuncts(std::move(b->right), out);
      return;
    }
  }
  out.push_back(std::move(expr));
}

BoundExprPtr CombineConjuncts(std::vector<BoundExprPtr> conjuncts) {
  BoundExprPtr result;
  for (auto& c : conjuncts) {
    if (!result) {
      result = std::move(c);
    } else {
      auto combined = std::make_unique<BoundBinary>(
          sql::BinaryOp::kAnd, std::move(result), std::move(c));
      combined->display_name = "and";
      result = std::move(combined);
    }
  }
  return result;
}

LogicalNodePtr PushFilterIntoJoin(LogicalNodePtr node) {
  for (auto& child : node->children) {
    child = PushFilterIntoJoin(std::move(child));
  }
  if (node->kind != NodeKind::kFilter ||
      node->children[0]->kind != NodeKind::kJoin) {
    return node;
  }
  auto& filter = static_cast<FilterNode&>(*node);
  auto& join = static_cast<JoinNode&>(*filter.children[0]);
  if (join.join_type != sql::JoinType::kInner) return node;

  const int64_t left_size =
      static_cast<int64_t>(join.children[0]->schema.size());
  const int64_t total = static_cast<int64_t>(join.schema.size());

  std::vector<BoundExprPtr> conjuncts;
  SplitConjuncts(std::move(filter.predicate), conjuncts);

  std::vector<BoundExprPtr> keep;
  std::vector<BoundExprPtr> to_left;
  std::vector<BoundExprPtr> to_right;
  for (auto& conjunct : conjuncts) {
    std::set<int64_t> refs;
    CollectColumnRefs(*conjunct, refs);
    const bool all_left =
        std::all_of(refs.begin(), refs.end(),
                    [&](int64_t i) { return i < left_size; });
    const bool all_right =
        std::all_of(refs.begin(), refs.end(),
                    [&](int64_t i) { return i >= left_size; });
    if (!refs.empty() && all_left) {
      to_left.push_back(std::move(conjunct));
    } else if (!refs.empty() && all_right) {
      // Shift refs into the right child's frame.
      std::vector<int64_t> old_to_new(static_cast<size_t>(total), -1);
      for (int64_t i = left_size; i < total; ++i) {
        old_to_new[static_cast<size_t>(i)] = i - left_size;
      }
      RemapColumnRefs(*conjunct, old_to_new);
      to_right.push_back(std::move(conjunct));
    } else {
      keep.push_back(std::move(conjunct));
    }
  }

  auto add_filter = [](LogicalNodePtr child,
                       std::vector<BoundExprPtr> preds) -> LogicalNodePtr {
    if (preds.empty()) return child;
    auto f = std::make_unique<FilterNode>();
    f->schema = child->schema;
    f->predicate = CombineConjuncts(std::move(preds));
    f->children.push_back(std::move(child));
    return f;
  };
  join.children[0] = add_filter(std::move(join.children[0]),
                                std::move(to_left));
  join.children[1] = add_filter(std::move(join.children[1]),
                                std::move(to_right));

  if (keep.empty()) {
    return std::move(filter.children[0]);  // filter fully pushed down
  }
  filter.predicate = CombineConjuncts(std::move(keep));
  return node;
}

// ---- Rule 3: scan projection pruning ----------------------------------------
//
// For a chain Project -> Filter* -> Scan, narrow the scan to the columns
// the project and filters actually reference. Particularly valuable when
// tables carry wide tensor columns (images) that the query never touches.

LogicalNodePtr PruneScanColumns(LogicalNodePtr node) {
  for (auto& child : node->children) {
    child = PruneScanColumns(std::move(child));
  }
  if (node->kind != NodeKind::kProject || node->children.empty()) {
    return node;
  }
  // Walk the chain below the project.
  std::vector<LogicalNode*> chain;
  LogicalNode* cursor = node->children[0].get();
  while (cursor->kind == NodeKind::kFilter) {
    chain.push_back(cursor);
    cursor = cursor->children[0].get();
  }
  if (cursor->kind != NodeKind::kScan) return node;
  auto& scan = static_cast<ScanNode&>(*cursor);
  if (!scan.projected_columns.empty()) return node;  // already pruned

  std::set<int64_t> used;
  ForEachExpr(*node, [&](BoundExpr& e) { CollectColumnRefs(e, used); });
  for (LogicalNode* f : chain) {
    ForEachExpr(*f, [&](BoundExpr& e) { CollectColumnRefs(e, used); });
  }
  if (used.empty()) {
    // Literal-only projections (`SELECT 1 FROM t`) reference no columns,
    // but the scan must still produce the table's row count — a zero-column
    // chunk reports 0 rows. Keep the cheapest column: any non-tensor
    // column beats any tensor column (per-row widths are unknown at plan
    // time, so among tensors only the element size can break ties).
    int64_t keep = 0;
    int64_t best_cost = std::numeric_limits<int64_t>::max();
    constexpr int64_t kTensorPenalty = int64_t{1} << 32;
    for (size_t i = 0; i < scan.schema.size(); ++i) {
      const ColumnMeta& meta = scan.schema[i];
      const int64_t cost =
          (meta.is_tensor ? kTensorPenalty : 0) + DTypeSize(meta.dtype);
      if (cost < best_cost) {
        best_cost = cost;
        keep = static_cast<int64_t>(i);
      }
    }
    used.insert(keep);
  }
  if (used.size() == scan.schema.size()) return node;  // nothing to prune

  std::vector<int64_t> old_to_new(scan.schema.size(), -1);
  Schema new_schema;
  for (int64_t old : used) {
    old_to_new[static_cast<size_t>(old)] =
        static_cast<int64_t>(scan.projected_columns.size());
    scan.projected_columns.push_back(old);
    new_schema.push_back(scan.schema[static_cast<size_t>(old)]);
  }
  scan.schema = new_schema;
  for (LogicalNode* f : chain) {
    f->schema = new_schema;
    ForEachExpr(*f, [&](BoundExpr& e) { RemapColumnRefs(e, old_to_new); });
  }
  ForEachExpr(*node, [&](BoundExpr& e) { RemapColumnRefs(e, old_to_new); });
  return node;
}

// ---- Predicate selectivity heuristics ---------------------------------------
//
// System-R-style magic constants over a bound predicate tree — the engine
// keeps no table statistics, so the estimate is shape-driven: equality
// keeps 1/10 of the rows (or 1/|dictionary| when the compared column's
// dictionary cardinality is known), ranges keep 3/10, inequality keeps
// 9/10, conjunctions multiply, disjunctions add minus the overlap, NOT
// complements. Everything else (UDFs, parameters, bare booleans) is an
// agnostic 1/2. Feeds both `EstimateSubtreeRows` (join build-side choice)
// and the FilteredIndexTopK strategy cost rule.

// Dictionary cardinality of the column `e` references, or 0 when `e` is
// not a dictionary column ref / no table context is available. `schema`
// is the frame `e` is bound against (a scan output), `table` the scanned
// table resolved from the catalog; either may be null.
int64_t DictionaryCardinality(const BoundExpr& e, const Schema* schema,
                              const Table* table) {
  if (e.kind != exec::BoundExprKind::kColumnRef || schema == nullptr ||
      table == nullptr) {
    return 0;
  }
  const int64_t i = static_cast<const BoundColumnRef&>(e).column_index;
  if (i < 0 || i >= static_cast<int64_t>(schema->size()) ||
      (*schema)[static_cast<size_t>(i)].encoding != Encoding::kDictionary) {
    return 0;
  }
  auto col = table->ColumnIndex((*schema)[static_cast<size_t>(i)].name);
  if (!col.ok()) return 0;
  return static_cast<int64_t>(table->column(*col).dictionary().size());
}

double EstimateSelectivity(const BoundExpr& e, const Schema* schema,
                           const Table* table) {
  switch (e.kind) {
    case exec::BoundExprKind::kBinary: {
      const auto& b = static_cast<const BoundBinary&>(e);
      const auto left = [&] {
        return EstimateSelectivity(*b.left, schema, table);
      };
      const auto right = [&] {
        return EstimateSelectivity(*b.right, schema, table);
      };
      switch (b.op) {
        case sql::BinaryOp::kAnd:
          return left() * right();
        case sql::BinaryOp::kOr: {
          const double l = left();
          const double r = right();
          return l + r - l * r;
        }
        case sql::BinaryOp::kEq: {
          // `dict_col = constant` keeps 1/|dictionary| of the rows under a
          // uniformity assumption; without a known domain fall back to the
          // classic 1/10.
          const int64_t cardinality =
              std::max(DictionaryCardinality(*b.left, schema, table),
                       DictionaryCardinality(*b.right, schema, table));
          return cardinality > 0 ? 1.0 / static_cast<double>(cardinality)
                                 : 0.1;
        }
        case sql::BinaryOp::kNe:
          return 0.9;
        case sql::BinaryOp::kLt:
        case sql::BinaryOp::kLe:
        case sql::BinaryOp::kGt:
        case sql::BinaryOp::kGe:
          return 0.3;
        default:
          return 0.5;  // arithmetic in boolean position: no idea
      }
    }
    case exec::BoundExprKind::kUnary: {
      const auto& u = static_cast<const BoundUnary&>(e);
      if (u.op == sql::UnaryOp::kNot) {
        return 1.0 - EstimateSelectivity(*u.operand, schema, table);
      }
      return 0.5;
    }
    default:
      return 0.5;
  }
}

// ---- Join build-side choice -------------------------------------------------

// Expected-cardinality estimate of a subtree: the row count of the base
// table it scans, discounted by filter selectivities and capped by
// limits; -1 when unknown (TVFs, joins, aggregates change cardinality
// unpredictably).
int64_t EstimateSubtreeRows(const LogicalNode& node, const Catalog& catalog) {
  switch (node.kind) {
    case NodeKind::kScan: {
      auto table =
          catalog.GetTable(static_cast<const ScanNode&>(node).table_name);
      return table.ok() ? (*table)->num_rows() : -1;
    }
    case NodeKind::kFilter: {
      if (node.children.empty()) return -1;
      const int64_t child = EstimateSubtreeRows(*node.children[0], catalog);
      if (child < 0) return child;
      // Dictionary-cardinality context when the filter sits on a scan
      // (the common post-pushdown shape); shape heuristics otherwise.
      const Schema* schema = nullptr;
      std::shared_ptr<Table> table;
      if (node.children[0]->kind == NodeKind::kScan) {
        schema = &node.children[0]->schema;
        auto resolved = catalog.GetTable(
            static_cast<const ScanNode&>(*node.children[0]).table_name);
        if (resolved.ok()) table = *resolved;
      }
      const double s = EstimateSelectivity(
          *static_cast<const FilterNode&>(node).predicate, schema,
          table.get());
      return std::max<int64_t>(
          1, static_cast<int64_t>(static_cast<double>(child) * s));
    }
    case NodeKind::kProject:
    case NodeKind::kSort:
    case NodeKind::kDistinct:
      return node.children.empty()
                 ? -1
                 : EstimateSubtreeRows(*node.children[0], catalog);
    case NodeKind::kLimit: {
      const auto& limit = static_cast<const LimitNode&>(node);
      const int64_t child =
          node.children.empty()
              ? -1
              : EstimateSubtreeRows(*node.children[0], catalog);
      if (limit.limit < 0) return child;
      return child < 0 ? limit.limit : std::min(child, limit.limit);
    }
    default:
      // kIndexTopK never appears here: RewriteIndexTopK runs AFTER
      // ChooseJoinBuildSides (this function's only caller) in Optimize.
      return -1;
  }
}

// Hash joins build over their right child by default (a deterministic,
// compile-time choice — streaming execution must know which side to
// materialize before any row counts exist). When the left input is
// estimated smaller from base-table sizes, flip the build side so a tiny
// dimension table on the left is hashed instead of the big probe stream.
// Ties and unknowns keep the canonical right build.
void ChooseJoinBuildSides(LogicalNode& node, const Catalog& catalog) {
  for (auto& child : node.children) ChooseJoinBuildSides(*child, catalog);
  if (node.kind != NodeKind::kJoin) return;
  auto& join = static_cast<JoinNode&>(node);
  const int64_t left = EstimateSubtreeRows(*node.children[0], catalog);
  const int64_t right = EstimateSubtreeRows(*node.children[1], catalog);
  join.build_left = left >= 0 && right >= 0 && left < right;
}

// ---- Rule 5: index-accelerated top-k similarity -----------------------------
//
// Rewrites `Sort(sim DESC [, tiebreaks], fused_limit=k) <- Project(...,
// sim, ...) <- Filter* <- Scan(t)` into an IndexTopKNode when the catalog
// holds a (still-valid) vector index on the similarity's embedding
// column. Preconditions, each of which keeps the rewrite
// semantics-preserving:
//   - the Sort has a fused LIMIT and its FIRST key is descending — a full
//     sort (no LIMIT) or an ascending primary order is not a top-k
//     search; secondary keys of either direction are absorbed as exact
//     candidate tie-breaks (`extra_keys`);
//   - every sort key is a column ref into the Project, and the primary
//     projected expression is dot()/cosine_sim() over a Scan column with
//     a constant (column-free) query — the index can only prune by a
//     per-row score against one fixed vector;
//   - between Project and Scan only Filter nodes appear, none of whose
//     predicates (nor any project expression) calls a scalar UDF — UDF
//     bodies are whole-batch programs, and IndexTopK evaluates
//     expressions over candidate subsets only. The predicates are
//     absorbed into the node (ANDed; all are bound against the scan
//     frame) and a cost rule picks the filtered-search strategy from
//     selectivity estimates:
//       expected survivors < 2k      -> brute (index can't win),
//       selectivity < 1/2            -> pre_filter (prune before probing),
//       otherwise                    -> post_filter (probe, then filter,
//                                       widening to a survivor floor).
// Anything above the Sort (OFFSET Limit, hidden-sort-column cleanup
// Project) is untouched: IndexTopK emits exactly the rows the fused Sort
// would have (an OFFSET arrives here pre-fused as k = offset + limit).
bool ExprIsConstant(const BoundExpr& e) {
  std::set<int64_t> refs;
  CollectColumnRefs(e, refs);
  return refs.empty();
}

LogicalNodePtr RewriteIndexTopK(LogicalNodePtr node, const Catalog& catalog) {
  for (auto& child : node->children) {
    child = RewriteIndexTopK(std::move(child), catalog);
  }
  if (node->kind != NodeKind::kSort) return node;
  auto& sort = static_cast<SortNode&>(*node);
  if (sort.fused_limit < 0 || sort.items.empty() ||
      !sort.items[0].descending) {
    return node;
  }
  for (const SortItem& item : sort.items) {
    if (item.expr->kind != exec::BoundExprKind::kColumnRef) return node;
  }
  if (sort.children[0]->kind != NodeKind::kProject) return node;
  auto& project = static_cast<ProjectNode&>(*sort.children[0]);
  if (project.children.empty() || NodeUsesUdf(project)) return node;
  // Walk the Filter chain (if any) down to the Scan. Filter schemas equal
  // the scan output (PruneScanColumns keeps them consistent), so their
  // predicates share the project expressions' frame.
  std::vector<FilterNode*> filters;
  LogicalNode* below = project.children[0].get();
  while (below->kind == NodeKind::kFilter) {
    auto* filter = static_cast<FilterNode*>(below);
    if (NodeUsesUdf(*filter)) return node;
    filters.push_back(filter);
    below = below->children[0].get();
  }
  if (below->kind != NodeKind::kScan) return node;
  const auto& scan = static_cast<const ScanNode&>(*below);
  const int64_t sim_ordinal =
      static_cast<const BoundColumnRef&>(*sort.items[0].expr).column_index;
  if (sim_ordinal < 0 ||
      sim_ordinal >= static_cast<int64_t>(project.exprs.size())) {
    return node;
  }
  const BoundExpr& key = *project.exprs[static_cast<size_t>(sim_ordinal)];
  if (key.kind != exec::BoundExprKind::kVectorSim) return node;
  const auto& sim = static_cast<const exec::BoundVectorSim&>(key);
  if (sim.column->kind != exec::BoundExprKind::kColumnRef ||
      !ExprIsConstant(*sim.query)) {
    return node;
  }
  std::vector<IndexTopKNode::ExtraKey> extra_keys;
  for (size_t i = 1; i < sort.items.size(); ++i) {
    const int64_t ordinal =
        static_cast<const BoundColumnRef&>(*sort.items[i].expr).column_index;
    if (ordinal < 0 ||
        ordinal >= static_cast<int64_t>(project.exprs.size())) {
      return node;
    }
    extra_keys.push_back({ordinal, sort.items[i].descending});
  }
  const int64_t scan_col =
      static_cast<const BoundColumnRef&>(*sim.column).column_index;
  if (scan_col < 0 ||
      scan_col >= static_cast<int64_t>(scan.schema.size())) {
    return node;
  }
  const std::string& column_name =
      scan.schema[static_cast<size_t>(scan_col)].name;
  if (catalog.FindVectorIndex(scan.table_name, column_name) == nullptr) {
    return node;  // no (valid) index: keep the exact Sort+Limit plan
  }

  auto topk = std::make_unique<IndexTopKNode>();
  topk->schema = sort.schema;
  topk->table_name = scan.table_name;
  topk->column_name = column_name;
  topk->k = sort.fused_limit;
  topk->sim_ordinal = sim_ordinal;
  topk->extra_keys = std::move(extra_keys);
  topk->exprs = std::move(project.exprs);
  if (!filters.empty()) {
    std::vector<BoundExprPtr> conjuncts;
    for (FilterNode* filter : filters) {
      SplitConjuncts(std::move(filter->predicate), conjuncts);
    }
    topk->predicate = CombineConjuncts(std::move(conjuncts));
    // Cost rule: pick the strategy from the estimated survivor count.
    // The choice is compile-time state (EXPLAIN renders it; plans are
    // immutable) — a run can override it via RunOptions::vector_search.
    std::shared_ptr<Table> table;
    auto resolved = catalog.GetTable(scan.table_name);
    if (resolved.ok()) table = *resolved;
    const double selectivity =
        EstimateSelectivity(*topk->predicate, &scan.schema, table.get());
    const double rows =
        table != nullptr ? static_cast<double>(table->num_rows()) : 0.0;
    const double survivors = selectivity * rows;
    if (survivors < 2.0 * static_cast<double>(topk->k)) {
      topk->strategy = exec::VectorSearchStrategy::kBrute;
    } else if (selectivity < 0.5) {
      topk->strategy = exec::VectorSearchStrategy::kPreFilter;
    } else {
      topk->strategy = exec::VectorSearchStrategy::kPostFilter;
    }
  }
  // The Scan child: the innermost filter's child when filters were
  // absorbed, the project's child otherwise.
  topk->children.push_back(
      filters.empty() ? std::move(project.children[0])
                      : std::move(filters.back()->children[0]));
  return topk;
}

}  // namespace

LogicalNodePtr Optimize(LogicalNodePtr root, const Catalog* catalog) {
  root = FuseLimitIntoSort(std::move(root));
  root = PushFilterIntoJoin(std::move(root));
  root = PruneScanColumns(std::move(root));
  if (catalog != nullptr) {
    ChooseJoinBuildSides(*root, *catalog);
    root = RewriteIndexTopK(std::move(root), *catalog);
  }
  return root;
}

LogicalNodePtr Optimize(LogicalNodePtr root) {
  return Optimize(std::move(root), nullptr);
}

}  // namespace plan
}  // namespace tdp
