#include "src/plan/optimizer.h"

#include <algorithm>
#include <functional>
#include <limits>
#include <set>

#include "src/plan/pipeline.h"
#include "src/storage/catalog.h"

namespace tdp {
namespace plan {
namespace {

using exec::BoundBinary;
using exec::BoundCase;
using exec::BoundColumnRef;
using exec::BoundExpr;
using exec::BoundExprPtr;
using exec::BoundUdfCall;
using exec::BoundUnary;

// ---- Expression utilities ---------------------------------------------------

void CollectColumnRefs(const BoundExpr& e, std::set<int64_t>& out) {
  switch (e.kind) {
    case exec::BoundExprKind::kColumnRef:
      out.insert(static_cast<const BoundColumnRef&>(e).column_index);
      return;
    case exec::BoundExprKind::kBinary: {
      const auto& b = static_cast<const BoundBinary&>(e);
      CollectColumnRefs(*b.left, out);
      CollectColumnRefs(*b.right, out);
      return;
    }
    case exec::BoundExprKind::kUnary:
      CollectColumnRefs(*static_cast<const BoundUnary&>(e).operand, out);
      return;
    case exec::BoundExprKind::kUdfCall:
      for (const auto& a : static_cast<const BoundUdfCall&>(e).args) {
        CollectColumnRefs(*a, out);
      }
      return;
    case exec::BoundExprKind::kCase: {
      const auto& c = static_cast<const BoundCase&>(e);
      for (const auto& [when, then] : c.branches) {
        CollectColumnRefs(*when, out);
        CollectColumnRefs(*then, out);
      }
      if (c.else_expr) CollectColumnRefs(*c.else_expr, out);
      return;
    }
    case exec::BoundExprKind::kVectorSim: {
      const auto& v = static_cast<const exec::BoundVectorSim&>(e);
      CollectColumnRefs(*v.column, out);
      CollectColumnRefs(*v.query, out);
      return;
    }
    case exec::BoundExprKind::kLiteral:
    case exec::BoundExprKind::kParameter:
      return;
  }
}

void RemapColumnRefs(BoundExpr& e, const std::vector<int64_t>& old_to_new) {
  switch (e.kind) {
    case exec::BoundExprKind::kColumnRef: {
      auto& ref = static_cast<BoundColumnRef&>(e);
      ref.column_index = old_to_new[static_cast<size_t>(ref.column_index)];
      return;
    }
    case exec::BoundExprKind::kBinary: {
      auto& b = static_cast<BoundBinary&>(e);
      RemapColumnRefs(*b.left, old_to_new);
      RemapColumnRefs(*b.right, old_to_new);
      return;
    }
    case exec::BoundExprKind::kUnary:
      RemapColumnRefs(*static_cast<BoundUnary&>(e).operand, old_to_new);
      return;
    case exec::BoundExprKind::kUdfCall:
      for (auto& a : static_cast<BoundUdfCall&>(e).args) {
        RemapColumnRefs(*a, old_to_new);
      }
      return;
    case exec::BoundExprKind::kCase: {
      auto& c = static_cast<BoundCase&>(e);
      for (auto& [when, then] : c.branches) {
        RemapColumnRefs(*when, old_to_new);
        RemapColumnRefs(*then, old_to_new);
      }
      if (c.else_expr) RemapColumnRefs(*c.else_expr, old_to_new);
      return;
    }
    case exec::BoundExprKind::kVectorSim: {
      auto& v = static_cast<exec::BoundVectorSim&>(e);
      RemapColumnRefs(*v.column, old_to_new);
      RemapColumnRefs(*v.query, old_to_new);
      return;
    }
    case exec::BoundExprKind::kLiteral:
    case exec::BoundExprKind::kParameter:
      return;
  }
}

// ---- Rule 1: fuse Limit into Sort -------------------------------------------

LogicalNodePtr FuseLimitIntoSort(LogicalNodePtr node) {
  for (auto& child : node->children) {
    child = FuseLimitIntoSort(std::move(child));
  }
  if (node->kind != NodeKind::kLimit) return node;
  auto& limit = static_cast<LimitNode&>(*node);
  if (limit.limit < 0) return node;
  // Look through the hidden-sort-column cleanup Project, if present.
  LogicalNode* below = limit.children[0].get();
  if (below->kind == NodeKind::kProject && !below->children.empty() &&
      below->children[0]->kind == NodeKind::kSort) {
    below = below->children[0].get();
  }
  if (below->kind != NodeKind::kSort) return node;
  auto& sort = static_cast<SortNode&>(*below);
  // The sort keeps offset+limit rows; the Limit then applies the offset.
  sort.fused_limit = limit.offset + limit.limit;
  if (limit.offset == 0) {
    // The top-k sort already yields exactly `limit` rows, so the Limit node
    // is redundant — drop it (keeping the cleanup projection when present).
    return std::move(node->children[0]);
  }
  return node;
}

// ---- Rule 2: push single-side filter conjuncts below a join -----------------

void SplitConjuncts(BoundExprPtr expr, std::vector<BoundExprPtr>& out) {
  if (expr->kind == exec::BoundExprKind::kBinary) {
    auto* b = static_cast<BoundBinary*>(expr.get());
    if (b->op == sql::BinaryOp::kAnd) {
      SplitConjuncts(std::move(b->left), out);
      SplitConjuncts(std::move(b->right), out);
      return;
    }
  }
  out.push_back(std::move(expr));
}

BoundExprPtr CombineConjuncts(std::vector<BoundExprPtr> conjuncts) {
  BoundExprPtr result;
  for (auto& c : conjuncts) {
    if (!result) {
      result = std::move(c);
    } else {
      auto combined = std::make_unique<BoundBinary>(
          sql::BinaryOp::kAnd, std::move(result), std::move(c));
      combined->display_name = "and";
      result = std::move(combined);
    }
  }
  return result;
}

LogicalNodePtr PushFilterIntoJoin(LogicalNodePtr node) {
  for (auto& child : node->children) {
    child = PushFilterIntoJoin(std::move(child));
  }
  if (node->kind != NodeKind::kFilter ||
      node->children[0]->kind != NodeKind::kJoin) {
    return node;
  }
  auto& filter = static_cast<FilterNode&>(*node);
  auto& join = static_cast<JoinNode&>(*filter.children[0]);
  if (join.join_type != sql::JoinType::kInner) return node;

  const int64_t left_size =
      static_cast<int64_t>(join.children[0]->schema.size());
  const int64_t total = static_cast<int64_t>(join.schema.size());

  std::vector<BoundExprPtr> conjuncts;
  SplitConjuncts(std::move(filter.predicate), conjuncts);

  std::vector<BoundExprPtr> keep;
  std::vector<BoundExprPtr> to_left;
  std::vector<BoundExprPtr> to_right;
  for (auto& conjunct : conjuncts) {
    std::set<int64_t> refs;
    CollectColumnRefs(*conjunct, refs);
    const bool all_left =
        std::all_of(refs.begin(), refs.end(),
                    [&](int64_t i) { return i < left_size; });
    const bool all_right =
        std::all_of(refs.begin(), refs.end(),
                    [&](int64_t i) { return i >= left_size; });
    if (!refs.empty() && all_left) {
      to_left.push_back(std::move(conjunct));
    } else if (!refs.empty() && all_right) {
      // Shift refs into the right child's frame.
      std::vector<int64_t> old_to_new(static_cast<size_t>(total), -1);
      for (int64_t i = left_size; i < total; ++i) {
        old_to_new[static_cast<size_t>(i)] = i - left_size;
      }
      RemapColumnRefs(*conjunct, old_to_new);
      to_right.push_back(std::move(conjunct));
    } else {
      keep.push_back(std::move(conjunct));
    }
  }

  auto add_filter = [](LogicalNodePtr child,
                       std::vector<BoundExprPtr> preds) -> LogicalNodePtr {
    if (preds.empty()) return child;
    auto f = std::make_unique<FilterNode>();
    f->schema = child->schema;
    f->predicate = CombineConjuncts(std::move(preds));
    f->children.push_back(std::move(child));
    return f;
  };
  join.children[0] = add_filter(std::move(join.children[0]),
                                std::move(to_left));
  join.children[1] = add_filter(std::move(join.children[1]),
                                std::move(to_right));

  if (keep.empty()) {
    return std::move(filter.children[0]);  // filter fully pushed down
  }
  filter.predicate = CombineConjuncts(std::move(keep));
  return node;
}

// ---- Rule 3: scan projection pruning ----------------------------------------
//
// For a chain Project -> Filter* -> Scan, narrow the scan to the columns
// the project and filters actually reference. Particularly valuable when
// tables carry wide tensor columns (images) that the query never touches.

LogicalNodePtr PruneScanColumns(LogicalNodePtr node) {
  for (auto& child : node->children) {
    child = PruneScanColumns(std::move(child));
  }
  if (node->kind != NodeKind::kProject || node->children.empty()) {
    return node;
  }
  // Walk the chain below the project.
  std::vector<LogicalNode*> chain;
  LogicalNode* cursor = node->children[0].get();
  while (cursor->kind == NodeKind::kFilter) {
    chain.push_back(cursor);
    cursor = cursor->children[0].get();
  }
  if (cursor->kind != NodeKind::kScan) return node;
  auto& scan = static_cast<ScanNode&>(*cursor);
  if (!scan.projected_columns.empty()) return node;  // already pruned

  std::set<int64_t> used;
  ForEachExpr(*node, [&](BoundExpr& e) { CollectColumnRefs(e, used); });
  for (LogicalNode* f : chain) {
    ForEachExpr(*f, [&](BoundExpr& e) { CollectColumnRefs(e, used); });
  }
  if (used.empty()) {
    // Literal-only projections (`SELECT 1 FROM t`) reference no columns,
    // but the scan must still produce the table's row count — a zero-column
    // chunk reports 0 rows. Keep the cheapest column: any non-tensor
    // column beats any tensor column (per-row widths are unknown at plan
    // time, so among tensors only the element size can break ties).
    int64_t keep = 0;
    int64_t best_cost = std::numeric_limits<int64_t>::max();
    constexpr int64_t kTensorPenalty = int64_t{1} << 32;
    for (size_t i = 0; i < scan.schema.size(); ++i) {
      const ColumnMeta& meta = scan.schema[i];
      const int64_t cost =
          (meta.is_tensor ? kTensorPenalty : 0) + DTypeSize(meta.dtype);
      if (cost < best_cost) {
        best_cost = cost;
        keep = static_cast<int64_t>(i);
      }
    }
    used.insert(keep);
  }
  if (used.size() == scan.schema.size()) return node;  // nothing to prune

  std::vector<int64_t> old_to_new(scan.schema.size(), -1);
  Schema new_schema;
  for (int64_t old : used) {
    old_to_new[static_cast<size_t>(old)] =
        static_cast<int64_t>(scan.projected_columns.size());
    scan.projected_columns.push_back(old);
    new_schema.push_back(scan.schema[static_cast<size_t>(old)]);
  }
  scan.schema = new_schema;
  for (LogicalNode* f : chain) {
    f->schema = new_schema;
    ForEachExpr(*f, [&](BoundExpr& e) { RemapColumnRefs(e, old_to_new); });
  }
  ForEachExpr(*node, [&](BoundExpr& e) { RemapColumnRefs(e, old_to_new); });
  return node;
}

// ---- Join build-side choice -------------------------------------------------

// Upper-bound cardinality estimate of a subtree: the row count of the
// base table it scans (filters/limits only shrink it); -1 when unknown
// (TVFs, joins, aggregates change cardinality unpredictably).
int64_t EstimateSubtreeRows(const LogicalNode& node, const Catalog& catalog) {
  switch (node.kind) {
    case NodeKind::kScan: {
      auto table =
          catalog.GetTable(static_cast<const ScanNode&>(node).table_name);
      return table.ok() ? (*table)->num_rows() : -1;
    }
    case NodeKind::kFilter:
    case NodeKind::kProject:
    case NodeKind::kSort:
    case NodeKind::kDistinct:
      return node.children.empty()
                 ? -1
                 : EstimateSubtreeRows(*node.children[0], catalog);
    case NodeKind::kLimit: {
      const auto& limit = static_cast<const LimitNode&>(node);
      const int64_t child =
          node.children.empty()
              ? -1
              : EstimateSubtreeRows(*node.children[0], catalog);
      if (limit.limit < 0) return child;
      return child < 0 ? limit.limit : std::min(child, limit.limit);
    }
    default:
      // kIndexTopK never appears here: RewriteIndexTopK runs AFTER
      // ChooseJoinBuildSides (this function's only caller) in Optimize.
      return -1;
  }
}

// Hash joins build over their right child by default (a deterministic,
// compile-time choice — streaming execution must know which side to
// materialize before any row counts exist). When the left input is
// estimated smaller from base-table sizes, flip the build side so a tiny
// dimension table on the left is hashed instead of the big probe stream.
// Ties and unknowns keep the canonical right build.
void ChooseJoinBuildSides(LogicalNode& node, const Catalog& catalog) {
  for (auto& child : node.children) ChooseJoinBuildSides(*child, catalog);
  if (node.kind != NodeKind::kJoin) return;
  auto& join = static_cast<JoinNode&>(node);
  const int64_t left = EstimateSubtreeRows(*node.children[0], catalog);
  const int64_t right = EstimateSubtreeRows(*node.children[1], catalog);
  join.build_left = left >= 0 && right >= 0 && left < right;
}

// ---- Rule 5: index-accelerated top-k similarity -----------------------------
//
// Rewrites `Sort(sim DESC, fused_limit=k) <- Project(..., sim, ...) <-
// Scan(t)` into an IndexTopKNode when the catalog holds a (still-valid)
// vector index on the similarity's embedding column. Preconditions, each
// of which keeps the rewrite semantics-preserving:
//   - the Sort has exactly one key, descending, with a fused LIMIT — a
//     full sort (no LIMIT) or an ascending/multi-key order is not a top-k
//     search;
//   - the key is a column ref into the Project, and that projected
//     expression is dot()/cosine_sim() over a Scan column with a constant
//     (column-free) query — the index can only prune by a per-row score
//     against one fixed vector;
//   - the Project sits DIRECTLY on the Scan (no Filter: a predicate could
//     eliminate candidate rows the index pruned in, and keep rows it
//     pruned out);
//   - no project expression calls a scalar UDF — UDF bodies are
//     whole-batch programs, and IndexTopK evaluates the projection over
//     the k winners only.
// Anything above the Sort (OFFSET Limit, hidden-sort-column cleanup
// Project) is untouched: IndexTopK emits exactly the rows the fused Sort
// would have.
bool ExprIsConstant(const BoundExpr& e) {
  std::set<int64_t> refs;
  CollectColumnRefs(e, refs);
  return refs.empty();
}

LogicalNodePtr RewriteIndexTopK(LogicalNodePtr node, const Catalog& catalog) {
  for (auto& child : node->children) {
    child = RewriteIndexTopK(std::move(child), catalog);
  }
  if (node->kind != NodeKind::kSort) return node;
  auto& sort = static_cast<SortNode&>(*node);
  if (sort.fused_limit < 0 || sort.items.size() != 1 ||
      !sort.items[0].descending ||
      sort.items[0].expr->kind != exec::BoundExprKind::kColumnRef) {
    return node;
  }
  if (sort.children[0]->kind != NodeKind::kProject) return node;
  auto& project = static_cast<ProjectNode&>(*sort.children[0]);
  if (project.children.empty() ||
      project.children[0]->kind != NodeKind::kScan || NodeUsesUdf(project)) {
    return node;
  }
  const auto& scan = static_cast<const ScanNode&>(*project.children[0]);
  const int64_t sim_ordinal =
      static_cast<const BoundColumnRef&>(*sort.items[0].expr).column_index;
  if (sim_ordinal < 0 ||
      sim_ordinal >= static_cast<int64_t>(project.exprs.size())) {
    return node;
  }
  const BoundExpr& key = *project.exprs[static_cast<size_t>(sim_ordinal)];
  if (key.kind != exec::BoundExprKind::kVectorSim) return node;
  const auto& sim = static_cast<const exec::BoundVectorSim&>(key);
  if (sim.column->kind != exec::BoundExprKind::kColumnRef ||
      !ExprIsConstant(*sim.query)) {
    return node;
  }
  const int64_t scan_col =
      static_cast<const BoundColumnRef&>(*sim.column).column_index;
  if (scan_col < 0 ||
      scan_col >= static_cast<int64_t>(scan.schema.size())) {
    return node;
  }
  const std::string& column_name =
      scan.schema[static_cast<size_t>(scan_col)].name;
  if (catalog.FindVectorIndex(scan.table_name, column_name) == nullptr) {
    return node;  // no (valid) index: keep the exact Sort+Limit plan
  }

  auto topk = std::make_unique<IndexTopKNode>();
  topk->schema = sort.schema;
  topk->table_name = scan.table_name;
  topk->column_name = column_name;
  topk->k = sort.fused_limit;
  topk->sim_ordinal = sim_ordinal;
  topk->exprs = std::move(project.exprs);
  topk->children.push_back(std::move(project.children[0]));  // the Scan
  return topk;
}

}  // namespace

LogicalNodePtr Optimize(LogicalNodePtr root, const Catalog* catalog) {
  root = FuseLimitIntoSort(std::move(root));
  root = PushFilterIntoJoin(std::move(root));
  root = PruneScanColumns(std::move(root));
  if (catalog != nullptr) {
    ChooseJoinBuildSides(*root, *catalog);
    root = RewriteIndexTopK(std::move(root), *catalog);
  }
  return root;
}

LogicalNodePtr Optimize(LogicalNodePtr root) {
  return Optimize(std::move(root), nullptr);
}

}  // namespace plan
}  // namespace tdp
