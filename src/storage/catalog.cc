#include "src/storage/catalog.h"

#include "src/common/rng.h"
#include "src/common/string_util.h"

namespace tdp {
namespace {

std::string IndexKey(const std::string& table, const std::string& column) {
  return ToLower(table) + '\x1f' + ToLower(column);
}

// Erases every index entry built over table `name` (any column).
template <typename Map>
void EraseTableIndexes(Map& indexes, const std::string& name) {
  const std::string prefix = ToLower(name) + '\x1f';
  for (auto it = indexes.lower_bound(prefix); it != indexes.end();) {
    if (it->first.compare(0, prefix.size(), prefix) != 0) break;
    it = indexes.erase(it);
  }
}

}  // namespace

Status Catalog::RegisterTable(const std::string& name,
                              std::shared_ptr<Table> table, bool replace) {
  if (table == nullptr) {
    return Status::InvalidArgument("cannot register a null table");
  }
  if (name.empty()) {
    return Status::InvalidArgument("table name must be non-empty");
  }
  const std::string key = ToLower(name);
  if (!replace && tables_.contains(key)) {
    return Status::AlreadyExists("table already registered: " + name);
  }
  tables_[key] = std::move(table);
  // Indexes snapshot the previous registration's data; drop them eagerly
  // (FindVectorIndex's identity check would reject them lazily anyway).
  EraseTableIndexes(indexes_, name);
  BumpSchemaEpoch(name);
  return Status::OK();
}

StatusOr<std::shared_ptr<Table>> Catalog::GetTable(
    const std::string& name) const {
  const auto it = tables_.find(ToLower(name));
  if (it == tables_.end()) {
    return Status::NotFound("table not found: " + name);
  }
  return it->second;
}

Status Catalog::DropTable(const std::string& name) {
  if (tables_.erase(ToLower(name)) == 0) {
    return Status::NotFound("table not found: " + name);
  }
  EraseTableIndexes(indexes_, name);
  BumpSchemaEpoch(name);
  return Status::OK();
}

Status Catalog::AddVectorIndex(
    std::shared_ptr<const VectorIndexEntry> entry) {
  if (entry == nullptr || entry->table == nullptr) {
    return Status::InvalidArgument("cannot install a null index entry");
  }
  indexes_[IndexKey(entry->table_name, entry->column_name)] =
      std::move(entry);
  return Status::OK();
}

std::shared_ptr<const VectorIndexEntry> Catalog::FindVectorIndex(
    const std::string& table, const std::string& column) const {
  const auto it = indexes_.find(IndexKey(table, column));
  if (it == indexes_.end()) return nullptr;
  // Lazy invalidation: the entry is valid only while the catalog still
  // serves the exact registration it snapshots.
  const auto live = tables_.find(ToLower(table));
  if (live == tables_.end() || live->second != it->second->table) {
    return nullptr;
  }
  return it->second;
}

Status Catalog::DropVectorIndex(const std::string& table,
                                const std::string& column) {
  if (indexes_.erase(IndexKey(table, column)) == 0) {
    return Status::NotFound("no vector index on " + table + "." + column);
  }
  return Status::OK();
}

std::vector<std::shared_ptr<const VectorIndexEntry>>
Catalog::TableVectorIndexes(const std::string& table) const {
  std::vector<std::shared_ptr<const VectorIndexEntry>> entries;
  const std::string prefix = ToLower(table) + '\x1f';
  const auto live = tables_.find(ToLower(table));
  for (auto it = indexes_.lower_bound(prefix); it != indexes_.end(); ++it) {
    if (it->first.compare(0, prefix.size(), prefix) != 0) break;
    if (live == tables_.end() || live->second != it->second->table) continue;
    entries.push_back(it->second);
  }
  return entries;
}

Status Catalog::ApplyWrite(
    const std::string& name, std::shared_ptr<Table> table,
    std::vector<std::shared_ptr<const VectorIndexEntry>> new_entries) {
  const std::string key = ToLower(name);
  if (table == nullptr || !tables_.contains(key)) {
    return Status::InvalidArgument("ApplyWrite target missing: " + name);
  }
  tables_[key] = std::move(table);
  EraseTableIndexes(indexes_, name);
  for (auto& entry : new_entries) {
    TDP_RETURN_NOT_OK(AddVectorIndex(std::move(entry)));
  }
  return Status::OK();
}

uint64_t Catalog::SchemaEpoch(const std::string& name) const {
  const auto it = schema_epochs_.find(ToLower(name));
  return it == schema_epochs_.end() ? 0 : it->second;
}

void Catalog::BumpSchemaEpoch(const std::string& name) {
  ++schema_epochs_[ToLower(name)];
}

std::vector<std::string> Catalog::ListTables() const {
  std::vector<std::string> names;
  names.reserve(tables_.size());
  for (const auto& [key, unused_table] : tables_) names.push_back(key);
  return names;
}

std::shared_ptr<Catalog> Catalog::Clone() const {
  auto copy = std::make_shared<Catalog>();
  copy->tables_ = tables_;
  copy->indexes_ = indexes_;
  copy->schema_epochs_ = schema_epochs_;
  return copy;
}

std::shared_ptr<const Catalog> SharedCatalog::Snapshot() const {
  std::lock_guard<std::mutex> lock(mu_);
  return current_;
}

uint64_t SharedCatalog::version() const {
  std::lock_guard<std::mutex> lock(mu_);
  return version_;
}

Status SharedCatalog::RegisterTable(const std::string& name,
                                    std::shared_ptr<Table> table,
                                    bool replace) {
  // The whole read-modify-write runs under the mutex so concurrent writers
  // cannot lose each other's registrations. Registration is rare relative
  // to query traffic; readers only contend for the pointer copy.
  std::lock_guard<std::mutex> lock(mu_);
  std::shared_ptr<Catalog> next = current_->Clone();
  TDP_RETURN_NOT_OK(next->RegisterTable(name, std::move(table), replace));
  current_ = std::move(next);
  ++version_;
  return Status::OK();
}

Status SharedCatalog::DropTable(const std::string& name) {
  std::lock_guard<std::mutex> lock(mu_);
  std::shared_ptr<Catalog> next = current_->Clone();
  TDP_RETURN_NOT_OK(next->DropTable(name));
  current_ = std::move(next);
  ++version_;
  return Status::OK();
}

Status SharedCatalog::CreateVectorIndex(
    const std::string& table, const std::string& column,
    const index::IvfIndex::Options& options, uint64_t seed) {
  // Build over one immutable snapshot, outside the mutex: k-means over a
  // large embedding column must not stall concurrent registrations or the
  // snapshot pointer copy every query run takes.
  const std::shared_ptr<const Catalog> snapshot = Snapshot();
  TDP_ASSIGN_OR_RETURN(std::shared_ptr<Table> target,
                       snapshot->GetTable(table));
  TDP_ASSIGN_OR_RETURN(int64_t col, target->ColumnIndex(column));
  const Column& c = target->column(col);
  if (c.encoding() != Encoding::kPlain || c.data().dim() != 2) {
    return Status::InvalidArgument(
        "vector index needs a rank-2 plain tensor column; " + table + "." +
        column + " is not one");
  }
  Rng rng(seed);
  // The index is built over the PHYSICAL rows of the column (deleted rows
  // included) so that it can be shared and extended across subsequent DML
  // tables; probing filters deleted ids per run.
  TDP_ASSIGN_OR_RETURN(
      index::IvfIndex built,
      index::IvfIndex::Build(target->PhysicalColumn(col).data(), options,
                             rng));

  // Brace init: IvfIndex's default constructor is private (an index only
  // exists built), so the entry is created whole.
  std::shared_ptr<const VectorIndexEntry> entry(new VectorIndexEntry{
      table, column,
      std::make_shared<const index::IvfIndex>(std::move(built)), target});

  std::lock_guard<std::mutex> lock(mu_);
  // A registration may have won the race while we built: the index then
  // snapshots data the catalog no longer serves. Fail rather than install
  // a permanently-invalid entry; the caller retries over the new data.
  const auto live = current_->GetTable(table);
  if (!live.ok() || live.value() != target) {
    return Status::ExecutionError("table " + table +
                                  " was re-registered during the index "
                                  "build; retry CreateVectorIndex");
  }
  std::shared_ptr<Catalog> next = current_->Clone();
  TDP_RETURN_NOT_OK(next->AddVectorIndex(std::move(entry)));
  // A new index changes how statements over `table` plan (the IndexTopK
  // rewrite), so cached brute-force plans must recompile.
  next->BumpSchemaEpoch(table);
  current_ = std::move(next);
  ++version_;
  return Status::OK();
}

Status SharedCatalog::DropVectorIndex(const std::string& table,
                                      const std::string& column) {
  std::lock_guard<std::mutex> lock(mu_);
  std::shared_ptr<Catalog> next = current_->Clone();
  TDP_RETURN_NOT_OK(next->DropVectorIndex(table, column));
  next->BumpSchemaEpoch(table);
  current_ = std::move(next);
  ++version_;
  return Status::OK();
}

Status SharedCatalog::ApplyDmlWrite(
    const std::string& name, const std::shared_ptr<const Table>& expected,
    std::shared_ptr<Table> replacement,
    std::vector<std::shared_ptr<const VectorIndexEntry>> new_entries) {
  std::lock_guard<std::mutex> lock(mu_);
  const auto live = current_->GetTable(name);
  if (!live.ok() || live.value() != expected) {
    return Status::ExecutionError(
        "table " + name +
        " changed while the DML delta was computed; retry the statement");
  }
  std::shared_ptr<Catalog> next = current_->Clone();
  TDP_RETURN_NOT_OK(next->ApplyWrite(name, std::move(replacement),
                                     std::move(new_entries)));
  current_ = std::move(next);
  ++version_;
  return Status::OK();
}

}  // namespace tdp
