#include "src/storage/catalog.h"

#include "src/common/string_util.h"

namespace tdp {

Status Catalog::RegisterTable(const std::string& name,
                              std::shared_ptr<Table> table, bool replace) {
  if (table == nullptr) {
    return Status::InvalidArgument("cannot register a null table");
  }
  if (name.empty()) {
    return Status::InvalidArgument("table name must be non-empty");
  }
  const std::string key = ToLower(name);
  if (!replace && tables_.contains(key)) {
    return Status::AlreadyExists("table already registered: " + name);
  }
  tables_[key] = std::move(table);
  return Status::OK();
}

StatusOr<std::shared_ptr<Table>> Catalog::GetTable(
    const std::string& name) const {
  const auto it = tables_.find(ToLower(name));
  if (it == tables_.end()) {
    return Status::NotFound("table not found: " + name);
  }
  return it->second;
}

Status Catalog::DropTable(const std::string& name) {
  if (tables_.erase(ToLower(name)) == 0) {
    return Status::NotFound("table not found: " + name);
  }
  return Status::OK();
}

std::vector<std::string> Catalog::ListTables() const {
  std::vector<std::string> names;
  names.reserve(tables_.size());
  for (const auto& [key, unused_table] : tables_) names.push_back(key);
  return names;
}

std::shared_ptr<Catalog> Catalog::Clone() const {
  auto copy = std::make_shared<Catalog>();
  copy->tables_ = tables_;
  return copy;
}

std::shared_ptr<const Catalog> SharedCatalog::Snapshot() const {
  std::lock_guard<std::mutex> lock(mu_);
  return current_;
}

uint64_t SharedCatalog::version() const {
  std::lock_guard<std::mutex> lock(mu_);
  return version_;
}

Status SharedCatalog::RegisterTable(const std::string& name,
                                    std::shared_ptr<Table> table,
                                    bool replace) {
  // The whole read-modify-write runs under the mutex so concurrent writers
  // cannot lose each other's registrations. Registration is rare relative
  // to query traffic; readers only contend for the pointer copy.
  std::lock_guard<std::mutex> lock(mu_);
  std::shared_ptr<Catalog> next = current_->Clone();
  TDP_RETURN_NOT_OK(next->RegisterTable(name, std::move(table), replace));
  current_ = std::move(next);
  ++version_;
  return Status::OK();
}

Status SharedCatalog::DropTable(const std::string& name) {
  std::lock_guard<std::mutex> lock(mu_);
  std::shared_ptr<Catalog> next = current_->Clone();
  TDP_RETURN_NOT_OK(next->DropTable(name));
  current_ = std::move(next);
  ++version_;
  return Status::OK();
}

}  // namespace tdp
