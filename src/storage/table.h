#ifndef TDP_STORAGE_TABLE_H_
#define TDP_STORAGE_TABLE_H_

#include <memory>
#include <string>
#include <vector>

#include "src/common/statusor.h"
#include "src/storage/column.h"

namespace tdp {

/// Immutable columnar table: named encoded-tensor columns of equal row
/// count. TDP's storage model (§2): scalar columns are 1-d tensors, while
/// unstructured columns (images, embeddings) are rank >= 2 tensors whose
/// dim 0 is the row dimension — structured and unstructured data share one
/// representation.
class Table {
 public:
  /// Validates equal column lengths and unique names.
  static StatusOr<std::shared_ptr<Table>> Create(
      std::string name, std::vector<std::string> column_names,
      std::vector<Column> columns);

  const std::string& name() const { return name_; }
  int64_t num_rows() const { return num_rows_; }
  int64_t num_columns() const {
    return static_cast<int64_t>(columns_.size());
  }
  const std::vector<std::string>& column_names() const {
    return column_names_;
  }
  const Column& column(int64_t i) const {
    return columns_[static_cast<size_t>(i)];
  }

  /// Case-insensitive column lookup.
  StatusOr<int64_t> ColumnIndex(const std::string& column_name) const;

  /// Copies all columns to `device` (the paper's `register_df(...,
  /// device=...)`).
  std::shared_ptr<Table> To(Device device) const;

  /// Renders up to `max_rows` rows as an aligned text table (result
  /// display in examples — the `toPandas` analogue).
  std::string ToString(int64_t max_rows = 20) const;

 private:
  Table(std::string name, std::vector<std::string> column_names,
        std::vector<Column> columns, int64_t num_rows)
      : name_(std::move(name)),
        column_names_(std::move(column_names)),
        columns_(std::move(columns)),
        num_rows_(num_rows) {}

  std::string name_;
  std::vector<std::string> column_names_;
  std::vector<Column> columns_;
  int64_t num_rows_;
};

/// Convenience incremental builder used by ingestion APIs and tests.
class TableBuilder {
 public:
  explicit TableBuilder(std::string table_name)
      : name_(std::move(table_name)) {}

  TableBuilder& AddFloat32(const std::string& column_name,
                           const std::vector<float>& values);
  TableBuilder& AddFloat64(const std::string& column_name,
                           const std::vector<double>& values);
  TableBuilder& AddInt64(const std::string& column_name,
                         const std::vector<int64_t>& values);
  TableBuilder& AddBool(const std::string& column_name,
                        const std::vector<bool>& values);
  TableBuilder& AddStrings(const std::string& column_name,
                           const std::vector<std::string>& values);
  /// Rank >= 2 tensor column (e.g. [n, c, h, w] images).
  TableBuilder& AddTensor(const std::string& column_name, Tensor values);
  /// Pre-built column of any encoding.
  TableBuilder& AddColumn(const std::string& column_name, Column column);

  /// Builds the table, optionally moving all columns to `device`.
  StatusOr<std::shared_ptr<Table>> Build(Device device = Device::kCpu);

 private:
  std::string name_;
  std::vector<std::string> column_names_;
  std::vector<Column> columns_;
};

}  // namespace tdp

#endif  // TDP_STORAGE_TABLE_H_
