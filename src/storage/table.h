#ifndef TDP_STORAGE_TABLE_H_
#define TDP_STORAGE_TABLE_H_

#include <atomic>
#include <memory>
#include <mutex>
#include <string>
#include <utility>
#include <vector>

#include "src/common/statusor.h"
#include "src/storage/column.h"

namespace tdp {

/// One immutable run of rows: every column holds the same row count. A
/// table is a sequence of segments plus a deleted-row bitmap over their
/// concatenation; DML produces new tables that share all untouched
/// segments with their predecessor, so a write costs O(delta), not O(n).
struct TableSegment {
  std::vector<Column> columns;
  int64_t num_rows = 0;
};

/// Rows per segment that INSERT aims for before starting a fresh tail
/// segment. Small enough that appending clones only a bounded tail, large
/// enough that scans see long contiguous runs after flattening.
inline constexpr int64_t kSegmentTargetRows = 4096;

/// Immutable columnar table: named encoded-tensor columns of equal row
/// count. TDP's storage model (§2): scalar columns are 1-d tensors, while
/// unstructured columns (images, embeddings) are rank >= 2 tensors whose
/// dim 0 is the row dimension — structured and unstructured data share one
/// representation.
///
/// Physically a table is segment-backed (see TableSegment): `Create` makes
/// a single-segment table, and the `With*` helpers derive new tables that
/// share unchanged segments. Readers are oblivious: `column(i)` /
/// `num_rows()` serve the LIVE view — non-deleted rows in physical order —
/// flattened lazily (and cached) the first time a reader asks. A
/// single-segment table with no deletes serves its segment columns
/// zero-copy.
///
/// Row-id vocabulary: a PHYSICAL row id indexes the concatenation of all
/// segments (stable across `WithAppended` / `WithDeleted`, which is what
/// lets vector indexes survive DML); a LIVE position indexes the flattened
/// view readers see. With no deletes the two coincide.
class Table {
 public:
  /// Validates equal column lengths and unique names.
  static StatusOr<std::shared_ptr<Table>> Create(
      std::string name, std::vector<std::string> column_names,
      std::vector<Column> columns);

  const std::string& name() const { return name_; }
  int64_t num_rows() const { return num_rows_; }
  int64_t num_columns() const {
    return static_cast<int64_t>(column_names_.size());
  }
  const std::vector<std::string>& column_names() const {
    return column_names_;
  }
  /// Column `i` of the live view (lazily flattened; see class comment).
  const Column& column(int64_t i) const;

  /// Case-insensitive column lookup.
  StatusOr<int64_t> ColumnIndex(const std::string& column_name) const;

  // ---- Incremental writes (DML) -----------------------------------------

  /// Appends `rows` (one column per table column, equal lengths > 0) as
  /// new physical rows. Shares every segment except the tail: a tail
  /// below kSegmentTargetRows is cloned-and-extended, a full tail is kept
  /// and the rows become a fresh segment. The delete bitmap is shared.
  StatusOr<std::shared_ptr<Table>> WithAppended(
      std::vector<Column> rows) const;

  /// Marks the given LIVE positions deleted. Shares every segment; only
  /// the bitmap is copied (no compaction — physical ids stay stable).
  StatusOr<std::shared_ptr<Table>> WithDeleted(
      const std::vector<int64_t>& live_positions) const;

  /// Replaces, for each (column index, values) pair, the column's values
  /// at the given LIVE positions (values row j goes to live_positions[j]).
  /// Row order is preserved — an UPDATE never moves a row. The result is a
  /// compacted single-segment table (physical == live): untouched columns
  /// are shared from the flattened view, so the cost is O(n) only for the
  /// updated columns (plus one flatten, usually already cached).
  StatusOr<std::shared_ptr<Table>> WithUpdated(
      const std::vector<int64_t>& live_positions,
      const std::vector<std::pair<int64_t, Column>>& updates) const;

  // ---- Physical-row introspection (index maintenance) -------------------

  int64_t num_physical_rows() const { return num_physical_rows_; }
  int64_t num_segments() const {
    return static_cast<int64_t>(segments_.size());
  }
  bool has_deletes() const { return num_rows_ != num_physical_rows_; }
  /// True when `physical` is a deleted row. The bitmap may be shorter
  /// than the physical row count (appends share their predecessor's
  /// bitmap); rows past its end are live.
  bool IsDeleted(int64_t physical) const {
    return deleted_ != nullptr &&
           physical < static_cast<int64_t>(deleted_->size()) &&
           (*deleted_)[static_cast<size_t>(physical)];
  }

  /// Column `i` over ALL physical rows (deleted included): the
  /// concatenation of the segments' columns. What vector indexes are
  /// built from — their row ids are physical ids.
  Column PhysicalColumn(int64_t i) const;

  /// Column `i` of the tail segment: the encoding/dtype/row-shape template
  /// INSERT kernels build their append batches against. O(1) — touches no
  /// other segment and never flattens.
  const Column& TailColumn(int64_t i) const {
    return segments_.back()->columns[static_cast<size_t>(i)];
  }

  /// Maps ascending physical row ids to live positions, dropping deleted
  /// rows. Identity (a copy) when the table has no deletes.
  std::vector<int64_t> MapPhysicalToLive(
      const std::vector<int64_t>& physical) const;

  /// Maps live positions (each in [0, num_rows())) to physical row ids —
  /// the inverse direction, used to push a live-view selection (e.g. a
  /// predicate's surviving rows) into a physical-id vector index probe.
  /// Identity (a copy) when the table has no deletes.
  std::vector<int64_t> MapLiveToPhysical(
      const std::vector<int64_t>& live) const;

  /// Copies all columns to `device` (the paper's `register_df(...,
  /// device=...)`). Flattens: the result is a single-segment table.
  std::shared_ptr<Table> To(Device device) const;

  /// Renders up to `max_rows` rows as an aligned text table (result
  /// display in examples — the `toPandas` analogue).
  std::string ToString(int64_t max_rows = 20) const;

 private:
  Table(std::string name, std::vector<std::string> column_names,
        std::vector<std::shared_ptr<const TableSegment>> segments,
        std::shared_ptr<const std::vector<bool>> deleted);

  /// Builds live_columns_ / live_to_physical_ once (double-checked; safe
  /// under concurrent readers).
  void EnsureLiveView() const;
  /// The flatten itself; called under live_mu_.
  void BuildLiveView() const;

  std::string name_;
  std::vector<std::string> column_names_;
  std::vector<std::shared_ptr<const TableSegment>> segments_;
  /// Deleted flags per physical row; null means "no deletes ever".
  std::shared_ptr<const std::vector<bool>> deleted_;
  int64_t num_physical_rows_ = 0;
  int64_t num_rows_ = 0;  // live rows

  // Lazily built live view (logical state is immutable; this is a cache).
  mutable std::atomic<bool> live_ready_{false};
  mutable std::mutex live_mu_;
  mutable std::vector<Column> live_columns_;
  /// live position -> physical id; empty when the mapping is identity.
  mutable std::vector<int64_t> live_to_physical_;
};

/// Convenience incremental builder used by ingestion APIs and tests.
class TableBuilder {
 public:
  explicit TableBuilder(std::string table_name)
      : name_(std::move(table_name)) {}

  TableBuilder& AddFloat32(const std::string& column_name,
                           const std::vector<float>& values);
  TableBuilder& AddFloat64(const std::string& column_name,
                           const std::vector<double>& values);
  TableBuilder& AddInt64(const std::string& column_name,
                         const std::vector<int64_t>& values);
  TableBuilder& AddBool(const std::string& column_name,
                        const std::vector<bool>& values);
  TableBuilder& AddStrings(const std::string& column_name,
                           const std::vector<std::string>& values);
  /// Rank >= 2 tensor column (e.g. [n, c, h, w] images).
  TableBuilder& AddTensor(const std::string& column_name, Tensor values);
  /// Pre-built column of any encoding.
  TableBuilder& AddColumn(const std::string& column_name, Column column);

  /// Builds the table, optionally moving all columns to `device`.
  StatusOr<std::shared_ptr<Table>> Build(Device device = Device::kCpu);

 private:
  std::string name_;
  std::vector<std::string> column_names_;
  std::vector<Column> columns_;
};

}  // namespace tdp

#endif  // TDP_STORAGE_TABLE_H_
