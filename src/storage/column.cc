#include "src/storage/column.h"

#include <algorithm>
#include <map>
#include <sstream>

#include "src/common/logging.h"
#include "src/tensor/ops.h"

namespace tdp {

std::string_view EncodingName(Encoding encoding) {
  switch (encoding) {
    case Encoding::kPlain:
      return "plain";
    case Encoding::kDictionary:
      return "dictionary";
    case Encoding::kProbability:
      return "probability";
  }
  return "unknown";
}

Column Column::Plain(Tensor data) {
  TDP_CHECK(data.defined());
  TDP_CHECK_GE(data.dim(), 1) << "columns must have a row dimension";
  Column c;
  c.encoding_ = Encoding::kPlain;
  c.data_ = std::move(data);
  return c;
}

Column Column::Dictionary(Tensor codes, std::vector<std::string> dictionary) {
  TDP_CHECK(codes.defined());
  TDP_CHECK(codes.dtype() == DType::kInt64 && codes.dim() == 1)
      << "dictionary codes must be 1-d int64";
  TDP_CHECK(std::is_sorted(dictionary.begin(), dictionary.end()))
      << "dictionary must be sorted (order-preserving encoding)";
  Column c;
  c.encoding_ = Encoding::kDictionary;
  c.data_ = std::move(codes);
  c.dictionary_ =
      std::make_shared<const std::vector<std::string>>(std::move(dictionary));
  return c;
}

Column Column::FromStrings(const std::vector<std::string>& values,
                           Device device) {
  // Order-preserving: sort distinct values so that code comparisons agree
  // with lexicographic comparisons.
  std::map<std::string, int64_t> index;
  for (const std::string& v : values) index.emplace(v, 0);
  std::vector<std::string> dictionary;
  dictionary.reserve(index.size());
  int64_t next = 0;
  for (auto& [key, code] : index) {
    code = next++;
    dictionary.push_back(key);
  }
  Tensor codes =
      Tensor::Empty({static_cast<int64_t>(values.size())}, DType::kInt64,
                    device);
  int64_t* p = codes.data<int64_t>();
  for (size_t i = 0; i < values.size(); ++i) p[i] = index[values[i]];
  return Dictionary(std::move(codes), std::move(dictionary));
}

Column Column::Probability(Tensor probs, std::vector<double> domain) {
  TDP_CHECK(probs.defined());
  TDP_CHECK_EQ(probs.dim(), 2) << "PE tensor must be [rows, classes]";
  TDP_CHECK(IsFloatingPoint(probs.dtype()));
  TDP_CHECK_EQ(probs.size(1), static_cast<int64_t>(domain.size()))
      << "PE domain size must match the class dimension";
  Column c;
  c.encoding_ = Encoding::kProbability;
  c.data_ = std::move(probs);
  c.domain_ = std::make_shared<const std::vector<double>>(std::move(domain));
  return c;
}

int64_t Column::DictionaryCode(const std::string& value) const {
  TDP_CHECK(encoding_ == Encoding::kDictionary);
  const std::vector<std::string>& dict = dictionary();
  const auto it = std::lower_bound(dict.begin(), dict.end(), value);
  if (it == dict.end() || *it != value) return -1;
  return it - dict.begin();
}

int64_t Column::LowerBoundCode(const std::string& value) const {
  TDP_CHECK(encoding_ == Encoding::kDictionary);
  const std::vector<std::string>& dict = dictionary();
  return std::lower_bound(dict.begin(), dict.end(), value) - dict.begin();
}

int64_t Column::UpperBoundCode(const std::string& value) const {
  TDP_CHECK(encoding_ == Encoding::kDictionary);
  const std::vector<std::string>& dict = dictionary();
  return std::upper_bound(dict.begin(), dict.end(), value) - dict.begin();
}

std::vector<std::string> Column::DecodeStrings() const {
  TDP_CHECK(encoding_ == Encoding::kDictionary)
      << "DecodeStrings on a non-dictionary column";
  const std::vector<int64_t> codes = data_.ToVector<int64_t>();
  std::vector<std::string> out;
  out.reserve(codes.size());
  for (int64_t code : codes) {
    TDP_CHECK(code >= 0 && code < static_cast<int64_t>(dictionary().size()));
    out.push_back(dictionary()[static_cast<size_t>(code)]);
  }
  return out;
}

Tensor Column::DecodeValues() const {
  switch (encoding_) {
    case Encoding::kPlain:
      return data_;
    case Encoding::kDictionary:
      return data_;  // codes are the comparable representation
    case Encoding::kProbability: {
      // Hard decode: domain[argmax(probs)].
      const Tensor arg = ArgMax(data_.Detach(), 1, /*keepdim=*/false);
      const std::vector<double>& dom = domain();
      Tensor domain_t = Tensor::Empty({static_cast<int64_t>(dom.size())},
                                      DType::kFloat32, data_.device());
      float* dp = domain_t.data<float>();
      for (size_t i = 0; i < dom.size(); ++i) {
        dp[i] = static_cast<float>(dom[i]);
      }
      return IndexSelect(domain_t, 0, arg);
    }
  }
  TDP_LOG(Fatal) << "unknown encoding";
  return Tensor();
}

Column Column::To(Device device) const {
  Column c = *this;
  c.data_ = data_.To(device);
  return c;
}

Column Column::Select(const Tensor& indices) const {
  Column c = *this;
  c.data_ = IndexSelect(data_, 0, indices);
  return c;
}

Column Column::SliceRows(int64_t start, int64_t count) const {
  TDP_CHECK(start >= 0 && count >= 0 && start + count <= length());
  Column c = *this;
  c.data_ = data_.Slice(0, start, count);
  return c;
}

Column Column::Concat(const std::vector<Column>& parts) {
  TDP_CHECK(!parts.empty());
  if (parts.size() == 1) return parts[0];
  std::vector<Tensor> tensors;
  tensors.reserve(parts.size());
  for (const Column& p : parts) {
    TDP_CHECK(p.encoding_ == parts[0].encoding_)
        << "cannot concatenate columns of different encodings";
    TDP_DCHECK(p.dictionary().size() == parts[0].dictionary().size());
    TDP_DCHECK(p.domain().size() == parts[0].domain().size());
    tensors.push_back(p.data_);
  }
  Column c = parts[0];
  c.data_ = Cat(tensors, 0);
  return c;
}

const std::vector<std::string>& Column::EmptyDictionary() {
  static const std::vector<std::string>* empty = new std::vector<std::string>();
  return *empty;
}

const std::vector<double>& Column::EmptyDomain() {
  static const std::vector<double>* empty = new std::vector<double>();
  return *empty;
}

std::string Column::ToString() const {
  std::ostringstream os;
  os << "Column(" << EncodingName(encoding_) << ", " << data_.ToString();
  if (encoding_ == Encoding::kDictionary) {
    os << ", dict_size=" << dictionary().size();
  }
  if (encoding_ == Encoding::kProbability) {
    os << ", domain_size=" << domain().size();
  }
  os << ")";
  return os.str();
}

}  // namespace tdp
