#include "src/storage/table.h"

#include <algorithm>
#include <iomanip>
#include <sstream>

#include "src/common/logging.h"
#include "src/common/string_util.h"
#include "src/tensor/ops.h"

namespace tdp {
namespace {

/// Row-wise concatenation that tolerates dictionary parts with DIFFERENT
/// dictionaries: appended segments encode their strings against their own
/// dictionary (extending the shared one would re-code every older row), so
/// flattening decodes and re-encodes into one order-preserving dictionary.
/// Parts sharing a single dictionary object — the common case — concat
/// their codes zero-decode.
Column ConcatColumnParts(const std::vector<Column>& parts) {
  TDP_CHECK(!parts.empty());
  if (parts.size() == 1) return parts[0];
  if (parts[0].encoding() == Encoding::kDictionary) {
    bool shared_dict = true;
    for (const Column& p : parts) {
      if (&p.dictionary() != &parts[0].dictionary()) {
        shared_dict = false;
        break;
      }
    }
    if (!shared_dict) {
      std::vector<std::string> values;
      for (const Column& p : parts) {
        std::vector<std::string> decoded = p.DecodeStrings();
        values.insert(values.end(),
                      std::make_move_iterator(decoded.begin()),
                      std::make_move_iterator(decoded.end()));
      }
      return Column::FromStrings(values);
    }
  }
  return Column::Concat(parts);
}

Tensor IndexTensor(const std::vector<int64_t>& indices) {
  Tensor t = Tensor::Empty({static_cast<int64_t>(indices.size())},
                           DType::kInt64);
  int64_t* p = t.data<int64_t>();
  for (size_t i = 0; i < indices.size(); ++i) p[i] = indices[i];
  return t;
}

}  // namespace

Table::Table(std::string name, std::vector<std::string> column_names,
             std::vector<std::shared_ptr<const TableSegment>> segments,
             std::shared_ptr<const std::vector<bool>> deleted)
    : name_(std::move(name)),
      column_names_(std::move(column_names)),
      segments_(std::move(segments)),
      deleted_(std::move(deleted)) {
  for (const auto& seg : segments_) num_physical_rows_ += seg->num_rows;
  num_rows_ = num_physical_rows_;
  if (deleted_ != nullptr) {
    for (bool d : *deleted_) num_rows_ -= d ? 1 : 0;
  }
  if (segments_.size() == 1 && deleted_ == nullptr) {
    // Zero-copy live view: the single segment IS the live view.
    live_columns_ = segments_[0]->columns;
    live_ready_.store(true, std::memory_order_release);
  }
}

StatusOr<std::shared_ptr<Table>> Table::Create(
    std::string name, std::vector<std::string> column_names,
    std::vector<Column> columns) {
  if (column_names.size() != columns.size()) {
    return Status::InvalidArgument("column name/data count mismatch");
  }
  if (columns.empty()) {
    return Status::InvalidArgument("table must have at least one column");
  }
  const int64_t rows = columns[0].length();
  for (size_t i = 0; i < columns.size(); ++i) {
    if (!columns[i].defined()) {
      return Status::InvalidArgument("undefined column: " + column_names[i]);
    }
    if (columns[i].length() != rows) {
      return Status::InvalidArgument(
          "column " + column_names[i] + " has " +
          std::to_string(columns[i].length()) + " rows, expected " +
          std::to_string(rows));
    }
    for (size_t j = i + 1; j < column_names.size(); ++j) {
      if (EqualsIgnoreCase(column_names[i], column_names[j])) {
        return Status::InvalidArgument("duplicate column name: " +
                                       column_names[i]);
      }
    }
  }
  auto segment = std::make_shared<TableSegment>();
  segment->columns = std::move(columns);
  segment->num_rows = rows;
  return std::shared_ptr<Table>(new Table(
      std::move(name), std::move(column_names), {std::move(segment)},
      nullptr));
}

void Table::EnsureLiveView() const {
  if (live_ready_.load(std::memory_order_acquire)) return;
  std::lock_guard<std::mutex> lock(live_mu_);
  if (live_ready_.load(std::memory_order_relaxed)) return;
  BuildLiveView();
  live_ready_.store(true, std::memory_order_release);
}

void Table::BuildLiveView() const {
  if (deleted_ != nullptr) {
    live_to_physical_.reserve(static_cast<size_t>(num_rows_));
    for (int64_t p = 0; p < num_physical_rows_; ++p) {
      if (!IsDeleted(p)) live_to_physical_.push_back(p);
    }
    if (static_cast<int64_t>(live_to_physical_.size()) ==
        num_physical_rows_) {
      live_to_physical_.clear();  // bitmap held no set bits: identity
    }
  }
  // An empty mapping is ambiguous: it means identity when every physical
  // row is live, but it is also the genuine mapping of a fully-deleted
  // table — only the row counts distinguish the two.
  const bool identity = num_rows_ == num_physical_rows_;
  const Tensor gather = identity ? Tensor() : IndexTensor(live_to_physical_);
  live_columns_.reserve(column_names_.size());
  std::vector<Column> parts;
  parts.reserve(segments_.size());
  for (size_t c = 0; c < column_names_.size(); ++c) {
    parts.clear();
    for (const auto& seg : segments_) parts.push_back(seg->columns[c]);
    Column physical = ConcatColumnParts(parts);
    live_columns_.push_back(gather.defined() ? physical.Select(gather)
                                             : std::move(physical));
  }
}

const Column& Table::column(int64_t i) const {
  EnsureLiveView();
  return live_columns_[static_cast<size_t>(i)];
}

StatusOr<int64_t> Table::ColumnIndex(const std::string& column_name) const {
  for (size_t i = 0; i < column_names_.size(); ++i) {
    if (EqualsIgnoreCase(column_names_[i], column_name)) {
      return static_cast<int64_t>(i);
    }
  }
  return Status::NotFound("column not found: " + column_name + " in table " +
                          name_);
}

Column Table::PhysicalColumn(int64_t i) const {
  std::vector<Column> parts;
  parts.reserve(segments_.size());
  for (const auto& seg : segments_) {
    parts.push_back(seg->columns[static_cast<size_t>(i)]);
  }
  return ConcatColumnParts(parts);
}

std::vector<int64_t> Table::MapPhysicalToLive(
    const std::vector<int64_t>& physical) const {
  if (!has_deletes()) return physical;
  EnsureLiveView();
  std::vector<int64_t> live;
  live.reserve(physical.size());
  for (int64_t p : physical) {
    if (IsDeleted(p)) continue;
    const auto it = std::lower_bound(live_to_physical_.begin(),
                                     live_to_physical_.end(), p);
    TDP_DCHECK(it != live_to_physical_.end() && *it == p);
    live.push_back(it - live_to_physical_.begin());
  }
  return live;
}

std::vector<int64_t> Table::MapLiveToPhysical(
    const std::vector<int64_t>& live) const {
  if (!has_deletes()) return live;
  EnsureLiveView();
  std::vector<int64_t> physical;
  physical.reserve(live.size());
  for (int64_t pos : live) {
    physical.push_back(live_to_physical_[static_cast<size_t>(pos)]);
  }
  return physical;
}

StatusOr<std::shared_ptr<Table>> Table::WithAppended(
    std::vector<Column> rows) const {
  if (rows.size() != column_names_.size()) {
    return Status::InvalidArgument(
        "INSERT into " + name_ + " supplies " +
        std::to_string(rows.size()) + " columns, table has " +
        std::to_string(column_names_.size()));
  }
  const int64_t added = rows[0].length();
  if (added <= 0) {
    return Status::InvalidArgument("INSERT must append at least one row");
  }
  const TableSegment& tail = *segments_.back();
  for (size_t c = 0; c < rows.size(); ++c) {
    const Column& existing = tail.columns[c];
    const Column& incoming = rows[c];
    if (!incoming.defined() || incoming.length() != added) {
      return Status::InvalidArgument("INSERT column " + column_names_[c] +
                                     " row-count mismatch");
    }
    if (incoming.encoding() != existing.encoding()) {
      return Status::InvalidArgument(
          "INSERT column " + column_names_[c] + " encoding mismatch: " +
          std::string(EncodingName(incoming.encoding())) + " vs " +
          std::string(EncodingName(existing.encoding())));
    }
    if (incoming.encoding() == Encoding::kPlain) {
      if (incoming.data().dtype() != existing.data().dtype() ||
          incoming.data().dim() != existing.data().dim()) {
        return Status::InvalidArgument("INSERT column " + column_names_[c] +
                                       " type mismatch");
      }
      for (int64_t d = 1; d < existing.data().dim(); ++d) {
        if (incoming.data().size(d) != existing.data().size(d)) {
          return Status::InvalidArgument(
              "INSERT column " + column_names_[c] + " shape mismatch");
        }
      }
    }
    if (incoming.encoding() == Encoding::kProbability &&
        incoming.domain() != existing.domain()) {
      return Status::InvalidArgument("INSERT column " + column_names_[c] +
                                     " probability-domain mismatch");
    }
  }
  std::vector<std::shared_ptr<const TableSegment>> segments = segments_;
  auto segment = std::make_shared<TableSegment>();
  if (tail.num_rows < kSegmentTargetRows) {
    // Clone-and-extend the tail; all earlier segments are shared.
    segment->num_rows = tail.num_rows + added;
    segment->columns.reserve(rows.size());
    for (size_t c = 0; c < rows.size(); ++c) {
      segment->columns.push_back(
          ConcatColumnParts({tail.columns[c], std::move(rows[c])}));
    }
    segments.back() = std::move(segment);
  } else {
    // Full tail: the new rows start a fresh segment.
    segment->num_rows = added;
    segment->columns = std::move(rows);
    segments.push_back(std::move(segment));
  }
  return std::shared_ptr<Table>(
      new Table(name_, column_names_, std::move(segments), deleted_));
}

StatusOr<std::shared_ptr<Table>> Table::WithDeleted(
    const std::vector<int64_t>& live_positions) const {
  EnsureLiveView();
  auto bitmap = deleted_ != nullptr
                    ? std::make_shared<std::vector<bool>>(*deleted_)
                    : std::make_shared<std::vector<bool>>();
  bitmap->resize(static_cast<size_t>(num_physical_rows_), false);
  for (int64_t pos : live_positions) {
    if (pos < 0 || pos >= num_rows_) {
      return Status::InvalidArgument("DELETE position out of range: " +
                                     std::to_string(pos));
    }
    const int64_t physical =
        live_to_physical_.empty()
            ? pos
            : live_to_physical_[static_cast<size_t>(pos)];
    (*bitmap)[static_cast<size_t>(physical)] = true;
  }
  return std::shared_ptr<Table>(
      new Table(name_, column_names_, segments_, std::move(bitmap)));
}

StatusOr<std::shared_ptr<Table>> Table::WithUpdated(
    const std::vector<int64_t>& live_positions,
    const std::vector<std::pair<int64_t, Column>>& updates) const {
  EnsureLiveView();
  const int64_t updated = static_cast<int64_t>(live_positions.size());
  for (int64_t pos : live_positions) {
    if (pos < 0 || pos >= num_rows_) {
      return Status::InvalidArgument("UPDATE position out of range: " +
                                     std::to_string(pos));
    }
  }
  std::vector<Column> columns = live_columns_;
  for (const auto& [col, values] : updates) {
    if (col < 0 || col >= num_columns()) {
      return Status::InvalidArgument("UPDATE column index out of range");
    }
    const Column& old = columns[static_cast<size_t>(col)];
    const std::string& col_name = column_names_[static_cast<size_t>(col)];
    if (!values.defined() || values.length() != updated) {
      return Status::InvalidArgument("UPDATE column " + col_name +
                                     " value-count mismatch");
    }
    if (values.encoding() != old.encoding()) {
      return Status::InvalidArgument("UPDATE column " + col_name +
                                     " encoding mismatch");
    }
    Column rebuilt;
    switch (old.encoding()) {
      case Encoding::kDictionary: {
        std::vector<std::string> strings = old.DecodeStrings();
        const std::vector<std::string> incoming = values.DecodeStrings();
        for (int64_t j = 0; j < updated; ++j) {
          strings[static_cast<size_t>(
              live_positions[static_cast<size_t>(j)])] =
              incoming[static_cast<size_t>(j)];
        }
        rebuilt = Column::FromStrings(strings);
        break;
      }
      case Encoding::kProbability:
        return Status::InvalidArgument(
            "UPDATE of probability-encoded columns is not supported");
      case Encoding::kPlain: {
        if (values.data().dtype() != old.data().dtype() ||
            values.data().dim() != old.data().dim()) {
          return Status::InvalidArgument("UPDATE column " + col_name +
                                         " type mismatch");
        }
        // Merge by gather: row i pulls from the old column unless updated,
        // in which case it pulls its replacement from the appended block.
        std::vector<int64_t> gather(static_cast<size_t>(num_rows_));
        for (int64_t i = 0; i < num_rows_; ++i) {
          gather[static_cast<size_t>(i)] = i;
        }
        for (int64_t j = 0; j < updated; ++j) {
          gather[static_cast<size_t>(
              live_positions[static_cast<size_t>(j)])] = num_rows_ + j;
        }
        rebuilt = Column::Concat({old, values}).Select(IndexTensor(gather));
        break;
      }
    }
    columns[static_cast<size_t>(col)] = std::move(rebuilt);
  }
  auto segment = std::make_shared<TableSegment>();
  segment->columns = std::move(columns);
  segment->num_rows = num_rows_;
  return std::shared_ptr<Table>(new Table(name_, column_names_,
                                          {std::move(segment)}, nullptr));
}

std::shared_ptr<Table> Table::To(Device device) const {
  std::vector<Column> moved;
  moved.reserve(column_names_.size());
  for (size_t i = 0; i < column_names_.size(); ++i) {
    moved.push_back(column(static_cast<int64_t>(i)).To(device));
  }
  auto result = Create(name_, column_names_, std::move(moved));
  TDP_CHECK(result.ok());
  return std::move(result).value();
}

std::string Table::ToString(int64_t max_rows) const {
  std::ostringstream os;
  os << name_ << " (" << num_rows_ << " rows)\n";
  for (size_t i = 0; i < column_names_.size(); ++i) {
    if (i > 0) os << " | ";
    os << column_names_[i];
  }
  os << "\n";
  const int64_t shown = std::min<int64_t>(max_rows, num_rows_);
  // Pre-decode dictionary columns once.
  std::vector<std::vector<std::string>> decoded(column_names_.size());
  for (size_t c = 0; c < column_names_.size(); ++c) {
    if (column(static_cast<int64_t>(c)).encoding() == Encoding::kDictionary) {
      decoded[c] = column(static_cast<int64_t>(c)).DecodeStrings();
    }
  }
  for (int64_t r = 0; r < shown; ++r) {
    for (size_t c = 0; c < column_names_.size(); ++c) {
      if (c > 0) os << " | ";
      const Column& col = column(static_cast<int64_t>(c));
      if (col.encoding() == Encoding::kDictionary) {
        os << decoded[c][static_cast<size_t>(r)];
      } else if (col.IsTensorColumn()) {
        os << "<tensor " << ShapeToString(col.data().shape()) << " row>";
      } else if (col.encoding() == Encoding::kProbability) {
        os << "<pe " << col.data().size(1) << " classes>";
      } else {
        os << col.data().At({r});
      }
    }
    os << "\n";
  }
  if (shown < num_rows_) os << "... (" << num_rows_ - shown << " more)\n";
  return os.str();
}

TableBuilder& TableBuilder::AddFloat32(const std::string& column_name,
                                       const std::vector<float>& values) {
  return AddColumn(column_name, Column::Plain(Tensor::FromVector(values)));
}

TableBuilder& TableBuilder::AddFloat64(const std::string& column_name,
                                       const std::vector<double>& values) {
  return AddColumn(column_name, Column::Plain(Tensor::FromVector(values)));
}

TableBuilder& TableBuilder::AddInt64(const std::string& column_name,
                                     const std::vector<int64_t>& values) {
  return AddColumn(column_name, Column::Plain(Tensor::FromVector(values)));
}

TableBuilder& TableBuilder::AddBool(const std::string& column_name,
                                    const std::vector<bool>& values) {
  Tensor t = Tensor::Empty({static_cast<int64_t>(values.size())},
                           DType::kBool);
  bool* p = t.data<bool>();
  for (size_t i = 0; i < values.size(); ++i) p[i] = values[i];
  return AddColumn(column_name, Column::Plain(std::move(t)));
}

TableBuilder& TableBuilder::AddStrings(const std::string& column_name,
                                       const std::vector<std::string>& values) {
  return AddColumn(column_name, Column::FromStrings(values));
}

TableBuilder& TableBuilder::AddTensor(const std::string& column_name,
                                      Tensor values) {
  return AddColumn(column_name, Column::Plain(std::move(values)));
}

TableBuilder& TableBuilder::AddColumn(const std::string& column_name,
                                      Column column) {
  column_names_.push_back(column_name);
  columns_.push_back(std::move(column));
  return *this;
}

StatusOr<std::shared_ptr<Table>> TableBuilder::Build(Device device) {
  TDP_ASSIGN_OR_RETURN(
      std::shared_ptr<Table> table,
      Table::Create(name_, std::move(column_names_), std::move(columns_)));
  if (device != Device::kCpu) return table->To(device);
  return table;
}

}  // namespace tdp
