#include "src/storage/table.h"

#include <iomanip>
#include <sstream>

#include "src/common/string_util.h"

namespace tdp {

StatusOr<std::shared_ptr<Table>> Table::Create(
    std::string name, std::vector<std::string> column_names,
    std::vector<Column> columns) {
  if (column_names.size() != columns.size()) {
    return Status::InvalidArgument("column name/data count mismatch");
  }
  if (columns.empty()) {
    return Status::InvalidArgument("table must have at least one column");
  }
  const int64_t rows = columns[0].length();
  for (size_t i = 0; i < columns.size(); ++i) {
    if (!columns[i].defined()) {
      return Status::InvalidArgument("undefined column: " + column_names[i]);
    }
    if (columns[i].length() != rows) {
      return Status::InvalidArgument(
          "column " + column_names[i] + " has " +
          std::to_string(columns[i].length()) + " rows, expected " +
          std::to_string(rows));
    }
    for (size_t j = i + 1; j < column_names.size(); ++j) {
      if (EqualsIgnoreCase(column_names[i], column_names[j])) {
        return Status::InvalidArgument("duplicate column name: " +
                                       column_names[i]);
      }
    }
  }
  return std::shared_ptr<Table>(new Table(std::move(name),
                                          std::move(column_names),
                                          std::move(columns), rows));
}

StatusOr<int64_t> Table::ColumnIndex(const std::string& column_name) const {
  for (size_t i = 0; i < column_names_.size(); ++i) {
    if (EqualsIgnoreCase(column_names_[i], column_name)) {
      return static_cast<int64_t>(i);
    }
  }
  return Status::NotFound("column not found: " + column_name + " in table " +
                          name_);
}

std::shared_ptr<Table> Table::To(Device device) const {
  std::vector<Column> moved;
  moved.reserve(columns_.size());
  for (const Column& c : columns_) moved.push_back(c.To(device));
  auto result = Create(name_, column_names_, std::move(moved));
  TDP_CHECK(result.ok());
  return std::move(result).value();
}

std::string Table::ToString(int64_t max_rows) const {
  std::ostringstream os;
  os << name_ << " (" << num_rows_ << " rows)\n";
  for (size_t i = 0; i < column_names_.size(); ++i) {
    if (i > 0) os << " | ";
    os << column_names_[i];
  }
  os << "\n";
  const int64_t shown = std::min<int64_t>(max_rows, num_rows_);
  // Pre-decode dictionary columns once.
  std::vector<std::vector<std::string>> decoded(columns_.size());
  for (size_t c = 0; c < columns_.size(); ++c) {
    if (columns_[c].encoding() == Encoding::kDictionary) {
      decoded[c] = columns_[c].DecodeStrings();
    }
  }
  for (int64_t r = 0; r < shown; ++r) {
    for (size_t c = 0; c < columns_.size(); ++c) {
      if (c > 0) os << " | ";
      const Column& col = columns_[c];
      if (col.encoding() == Encoding::kDictionary) {
        os << decoded[c][static_cast<size_t>(r)];
      } else if (col.IsTensorColumn()) {
        os << "<tensor " << ShapeToString(col.data().shape()) << " row>";
      } else if (col.encoding() == Encoding::kProbability) {
        os << "<pe " << col.data().size(1) << " classes>";
      } else {
        os << col.data().At({r});
      }
    }
    os << "\n";
  }
  if (shown < num_rows_) os << "... (" << num_rows_ - shown << " more)\n";
  return os.str();
}

TableBuilder& TableBuilder::AddFloat32(const std::string& column_name,
                                       const std::vector<float>& values) {
  return AddColumn(column_name, Column::Plain(Tensor::FromVector(values)));
}

TableBuilder& TableBuilder::AddFloat64(const std::string& column_name,
                                       const std::vector<double>& values) {
  return AddColumn(column_name, Column::Plain(Tensor::FromVector(values)));
}

TableBuilder& TableBuilder::AddInt64(const std::string& column_name,
                                     const std::vector<int64_t>& values) {
  return AddColumn(column_name, Column::Plain(Tensor::FromVector(values)));
}

TableBuilder& TableBuilder::AddBool(const std::string& column_name,
                                    const std::vector<bool>& values) {
  Tensor t = Tensor::Empty({static_cast<int64_t>(values.size())},
                           DType::kBool);
  bool* p = t.data<bool>();
  for (size_t i = 0; i < values.size(); ++i) p[i] = values[i];
  return AddColumn(column_name, Column::Plain(std::move(t)));
}

TableBuilder& TableBuilder::AddStrings(const std::string& column_name,
                                       const std::vector<std::string>& values) {
  return AddColumn(column_name, Column::FromStrings(values));
}

TableBuilder& TableBuilder::AddTensor(const std::string& column_name,
                                      Tensor values) {
  return AddColumn(column_name, Column::Plain(std::move(values)));
}

TableBuilder& TableBuilder::AddColumn(const std::string& column_name,
                                      Column column) {
  column_names_.push_back(column_name);
  columns_.push_back(std::move(column));
  return *this;
}

StatusOr<std::shared_ptr<Table>> TableBuilder::Build(Device device) {
  TDP_ASSIGN_OR_RETURN(
      std::shared_ptr<Table> table,
      Table::Create(name_, std::move(column_names_), std::move(columns_)));
  if (device != Device::kCpu) return table->To(device);
  return table;
}

}  // namespace tdp
