#ifndef TDP_STORAGE_CATALOG_H_
#define TDP_STORAGE_CATALOG_H_

#include <cstdint>
#include <map>
#include <memory>
#include <mutex>
#include <string>
#include <vector>

#include "src/common/statusor.h"
#include "src/storage/table.h"

namespace tdp {

/// Name -> table registry backing a TDP session (the paper's
/// `tdp.sql.register_df` target). Names are case-insensitive.
///
/// A Catalog instance is a plain single-threaded map; concurrent serving
/// goes through `SharedCatalog`, which hands out immutable Catalog
/// snapshots.
class Catalog {
 public:
  Catalog() = default;

  Catalog(const Catalog&) = delete;
  Catalog& operator=(const Catalog&) = delete;

  /// Registers `table` under `name`. When `replace` is true an existing
  /// table is overwritten (the paper re-registers MNIST_Grid every
  /// training iteration), otherwise AlreadyExists is returned.
  Status RegisterTable(const std::string& name,
                       std::shared_ptr<Table> table, bool replace = true);

  StatusOr<std::shared_ptr<Table>> GetTable(const std::string& name) const;

  Status DropTable(const std::string& name);

  std::vector<std::string> ListTables() const;

  /// Copies the registry map into a fresh Catalog (tables are immutable
  /// and shared, so this is O(#tables) pointer copies).
  std::shared_ptr<Catalog> Clone() const;

 private:
  std::map<std::string, std::shared_ptr<Table>> tables_;  // lowercased keys
};

/// Thread-safe copy-on-write catalog: readers take an immutable snapshot
/// (`shared_ptr<const Catalog>`) and never block or observe a half-applied
/// registration; writers clone the current snapshot, mutate the clone, and
/// swap it in under a mutex. One query run binds to exactly one snapshot,
/// so a table re-registered mid-run is picked up by the *next* run — the
/// serving-layer analogue of the paper's re-register-per-iteration loop.
class SharedCatalog {
 public:
  SharedCatalog() : current_(std::make_shared<const Catalog>()) {}

  SharedCatalog(const SharedCatalog&) = delete;
  SharedCatalog& operator=(const SharedCatalog&) = delete;

  /// The current immutable snapshot. Cheap (one locked pointer copy); the
  /// caller keeps the snapshot alive for as long as it reads from it.
  std::shared_ptr<const Catalog> Snapshot() const;

  /// Monotonic counter, bumped on every successful mutation. The plan
  /// cache records it at compile time to detect stale entries.
  uint64_t version() const;

  // Mutations: clone-and-swap. Serialized against each other; concurrent
  // readers keep their old snapshots.
  Status RegisterTable(const std::string& name, std::shared_ptr<Table> table,
                       bool replace = true);
  Status DropTable(const std::string& name);

  StatusOr<std::shared_ptr<Table>> GetTable(const std::string& name) const {
    return Snapshot()->GetTable(name);
  }
  std::vector<std::string> ListTables() const {
    return Snapshot()->ListTables();
  }

 private:
  mutable std::mutex mu_;
  std::shared_ptr<const Catalog> current_;  // guarded by mu_
  uint64_t version_ = 0;                    // guarded by mu_
};

}  // namespace tdp

#endif  // TDP_STORAGE_CATALOG_H_
