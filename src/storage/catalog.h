#ifndef TDP_STORAGE_CATALOG_H_
#define TDP_STORAGE_CATALOG_H_

#include <cstdint>
#include <map>
#include <memory>
#include <mutex>
#include <string>
#include <vector>

#include "src/common/statusor.h"
#include "src/index/ivf_index.h"
#include "src/storage/table.h"

namespace tdp {

/// Default k-means seed for `CreateVectorIndex` — one constant shared by
/// every entry point so "default" callers always build identical indexes.
inline constexpr uint64_t kDefaultVectorIndexSeed = 0x1df5eedull;

/// An immutable IVF index over one tensor column of one registered table,
/// snapshot-tagged with the exact `Table` registration it was built from.
/// Re-registering the table (even with identical content) makes the entry
/// unreachable: `Catalog::FindVectorIndex` hands an entry out only while
/// the catalog still maps `table_name` to the very same Table object — the
/// same lazy invalidate-on-version-move discipline the session plan cache
/// uses, so a stale index can never serve rows from a vanished snapshot.
struct VectorIndexEntry {
  std::string table_name;
  std::string column_name;
  index::IvfIndex index;
  /// The registration the index snapshots; identity (pointer) tag.
  std::shared_ptr<const Table> table;
};

/// Name -> table registry backing a TDP session (the paper's
/// `tdp.sql.register_df` target). Names are case-insensitive.
///
/// A Catalog instance is a plain single-threaded map; concurrent serving
/// goes through `SharedCatalog`, which hands out immutable Catalog
/// snapshots.
class Catalog {
 public:
  Catalog() = default;

  Catalog(const Catalog&) = delete;
  Catalog& operator=(const Catalog&) = delete;

  /// Registers `table` under `name`. When `replace` is true an existing
  /// table is overwritten (the paper re-registers MNIST_Grid every
  /// training iteration), otherwise AlreadyExists is returned. Vector
  /// indexes built over a previous registration of `name` are dropped —
  /// they snapshot data that is no longer served.
  Status RegisterTable(const std::string& name,
                       std::shared_ptr<Table> table, bool replace = true);

  StatusOr<std::shared_ptr<Table>> GetTable(const std::string& name) const;

  Status DropTable(const std::string& name);

  std::vector<std::string> ListTables() const;

  /// Installs `entry` under (entry->table_name, entry->column_name),
  /// replacing any previous index on that column.
  Status AddVectorIndex(std::shared_ptr<const VectorIndexEntry> entry);

  /// The index on `table`.`column`, or null when none exists or the one on
  /// file was built over a different registration of `table` than this
  /// catalog currently serves (lazy invalidation; see VectorIndexEntry).
  std::shared_ptr<const VectorIndexEntry> FindVectorIndex(
      const std::string& table, const std::string& column) const;

  Status DropVectorIndex(const std::string& table, const std::string& column);

  /// Copies the registry maps into a fresh Catalog (tables and index
  /// entries are immutable and shared, so this is O(#entries) pointer
  /// copies).
  std::shared_ptr<Catalog> Clone() const;

 private:
  std::map<std::string, std::shared_ptr<Table>> tables_;  // lowercased keys
  // "table\x1fcolumn" (lowercased) -> immutable index entry.
  std::map<std::string, std::shared_ptr<const VectorIndexEntry>> indexes_;
};

/// Thread-safe copy-on-write catalog: readers take an immutable snapshot
/// (`shared_ptr<const Catalog>`) and never block or observe a half-applied
/// registration; writers clone the current snapshot, mutate the clone, and
/// swap it in under a mutex. One query run binds to exactly one snapshot,
/// so a table re-registered mid-run is picked up by the *next* run — the
/// serving-layer analogue of the paper's re-register-per-iteration loop.
class SharedCatalog {
 public:
  SharedCatalog() : current_(std::make_shared<const Catalog>()) {}

  SharedCatalog(const SharedCatalog&) = delete;
  SharedCatalog& operator=(const SharedCatalog&) = delete;

  /// The current immutable snapshot. Cheap (one locked pointer copy); the
  /// caller keeps the snapshot alive for as long as it reads from it.
  std::shared_ptr<const Catalog> Snapshot() const;

  /// Monotonic counter, bumped on every successful mutation. The plan
  /// cache records it at compile time to detect stale entries.
  uint64_t version() const;

  // Mutations: clone-and-swap. Serialized against each other; concurrent
  // readers keep their old snapshots.
  Status RegisterTable(const std::string& name, std::shared_ptr<Table> table,
                       bool replace = true);
  Status DropTable(const std::string& name);

  /// Builds an IVF index over the tensor column `table`.`column` and
  /// installs it as an immutable, snapshot-tagged catalog object. The
  /// k-means build runs OUTSIDE the catalog mutex over one snapshot;
  /// installation re-checks that `table` still resolves to the snapshot it
  /// built from and fails with ExecutionError when a re-registration won
  /// the race (the caller may retry over the new data). Like any other
  /// mutation it bumps the catalog version, so cached brute-force plans
  /// are recompiled — and can now rewrite to IndexTopK.
  Status CreateVectorIndex(const std::string& table, const std::string& column,
                           const index::IvfIndex::Options& options = {},
                           uint64_t seed = kDefaultVectorIndexSeed);

  Status DropVectorIndex(const std::string& table, const std::string& column);

  StatusOr<std::shared_ptr<Table>> GetTable(const std::string& name) const {
    return Snapshot()->GetTable(name);
  }
  std::vector<std::string> ListTables() const {
    return Snapshot()->ListTables();
  }
  std::shared_ptr<const VectorIndexEntry> FindVectorIndex(
      const std::string& table, const std::string& column) const {
    return Snapshot()->FindVectorIndex(table, column);
  }

 private:
  mutable std::mutex mu_;
  std::shared_ptr<const Catalog> current_;  // guarded by mu_
  uint64_t version_ = 0;                    // guarded by mu_
};

}  // namespace tdp

#endif  // TDP_STORAGE_CATALOG_H_
