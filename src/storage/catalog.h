#ifndef TDP_STORAGE_CATALOG_H_
#define TDP_STORAGE_CATALOG_H_

#include <cstdint>
#include <map>
#include <memory>
#include <mutex>
#include <string>
#include <vector>

#include "src/common/statusor.h"
#include "src/index/ivf_index.h"
#include "src/storage/table.h"

namespace tdp {

/// Default k-means seed for `CreateVectorIndex` — one constant shared by
/// every entry point so "default" callers always build identical indexes.
inline constexpr uint64_t kDefaultVectorIndexSeed = 0x1df5eedull;

/// An immutable IVF index over one tensor column of one registered table,
/// snapshot-tagged with the exact `Table` registration it was built from.
/// Re-registering the table (even with identical content) makes the entry
/// unreachable: `Catalog::FindVectorIndex` hands an entry out only while
/// the catalog still maps `table_name` to the very same Table object — the
/// same lazy invalidate-on-version-move discipline the session plan cache
/// uses, so a stale index can never serve rows from a vanished snapshot.
/// The index rows are PHYSICAL rows of the tagged table (deleted rows
/// included), so the entry survives incremental DML: INSERT extends the
/// index (IvfIndex::WithAppended) and DELETE shares it unchanged — probing
/// drops deleted physical ids instead of rebuilding. The IvfIndex is held
/// by shared_ptr so a re-tagged entry (new Table identity, same data
/// lineage) shares the index storage instead of deep-copying its lists.
struct VectorIndexEntry {
  std::string table_name;
  std::string column_name;
  std::shared_ptr<const index::IvfIndex> index;
  /// The registration the index snapshots; identity (pointer) tag.
  std::shared_ptr<const Table> table;
};

/// Name -> table registry backing a TDP session (the paper's
/// `tdp.sql.register_df` target). Names are case-insensitive.
///
/// A Catalog instance is a plain single-threaded map; concurrent serving
/// goes through `SharedCatalog`, which hands out immutable Catalog
/// snapshots.
class Catalog {
 public:
  Catalog() = default;

  Catalog(const Catalog&) = delete;
  Catalog& operator=(const Catalog&) = delete;

  /// Registers `table` under `name`. When `replace` is true an existing
  /// table is overwritten (the paper re-registers MNIST_Grid every
  /// training iteration), otherwise AlreadyExists is returned. Vector
  /// indexes built over a previous registration of `name` are dropped —
  /// they snapshot data that is no longer served.
  Status RegisterTable(const std::string& name,
                       std::shared_ptr<Table> table, bool replace = true);

  StatusOr<std::shared_ptr<Table>> GetTable(const std::string& name) const;

  Status DropTable(const std::string& name);

  std::vector<std::string> ListTables() const;

  /// Installs `entry` under (entry->table_name, entry->column_name),
  /// replacing any previous index on that column.
  Status AddVectorIndex(std::shared_ptr<const VectorIndexEntry> entry);

  /// The index on `table`.`column`, or null when none exists or the one on
  /// file was built over a different registration of `table` than this
  /// catalog currently serves (lazy invalidation; see VectorIndexEntry).
  std::shared_ptr<const VectorIndexEntry> FindVectorIndex(
      const std::string& table, const std::string& column) const;

  Status DropVectorIndex(const std::string& table, const std::string& column);

  /// Every still-valid (identity-matching) index entry over `table`, in
  /// column order. What a DML kernel enumerates to re-tag / extend / drop
  /// entries alongside its table swap.
  std::vector<std::shared_ptr<const VectorIndexEntry>> TableVectorIndexes(
      const std::string& table) const;

  /// Replaces `name`'s table after a DML write. Unlike RegisterTable this
  /// neither bumps the schema epoch (DML preserves schema, so cached plans
  /// stay valid) nor drops index entries wholesale: `new_entries` —
  /// re-tagged or incrementally extended by the DML kernel — replace the
  /// table's entries, and any entry not re-supplied is dropped.
  Status ApplyWrite(
      const std::string& name, std::shared_ptr<Table> table,
      std::vector<std::shared_ptr<const VectorIndexEntry>> new_entries);

  /// Monotonic per-table schema epoch: bumped by register / drop /
  /// create-index / drop-index — every mutation that can change how a
  /// statement over the table BINDS or PLANS — and left alone by DML,
  /// whose writes preserve schema and are re-resolved per run. The plan
  /// cache records (table, epoch) pairs at compile time and revalidates
  /// per lookup, so an INSERT into `t` never evicts plans over `u` — or
  /// over `t`. Epochs survive DropTable (the bump is what invalidates
  /// plans over the dropped name); a never-touched table reports 0.
  uint64_t SchemaEpoch(const std::string& name) const;
  /// Bumps `name`'s schema epoch (DDL paths only; see SchemaEpoch).
  void BumpSchemaEpoch(const std::string& name);

  /// Copies the registry maps into a fresh Catalog (tables and index
  /// entries are immutable and shared, so this is O(#entries) pointer
  /// copies).
  std::shared_ptr<Catalog> Clone() const;

 private:
  std::map<std::string, std::shared_ptr<Table>> tables_;  // lowercased keys
  // "table\x1fcolumn" (lowercased) -> immutable index entry.
  std::map<std::string, std::shared_ptr<const VectorIndexEntry>> indexes_;
  std::map<std::string, uint64_t> schema_epochs_;  // lowercased keys
};

/// Thread-safe copy-on-write catalog: readers take an immutable snapshot
/// (`shared_ptr<const Catalog>`) and never block or observe a half-applied
/// registration; writers clone the current snapshot, mutate the clone, and
/// swap it in under a mutex. One query run binds to exactly one snapshot,
/// so a table re-registered mid-run is picked up by the *next* run — the
/// serving-layer analogue of the paper's re-register-per-iteration loop.
class SharedCatalog {
 public:
  SharedCatalog() : current_(std::make_shared<const Catalog>()) {}

  SharedCatalog(const SharedCatalog&) = delete;
  SharedCatalog& operator=(const SharedCatalog&) = delete;

  /// The current immutable snapshot. Cheap (one locked pointer copy); the
  /// caller keeps the snapshot alive for as long as it reads from it.
  std::shared_ptr<const Catalog> Snapshot() const;

  /// Monotonic counter, bumped on every successful mutation. The plan
  /// cache records it at compile time to detect stale entries.
  uint64_t version() const;

  // Mutations: clone-and-swap. Serialized against each other; concurrent
  // readers keep their old snapshots.
  Status RegisterTable(const std::string& name, std::shared_ptr<Table> table,
                       bool replace = true);
  Status DropTable(const std::string& name);

  /// Builds an IVF index over the tensor column `table`.`column` and
  /// installs it as an immutable, snapshot-tagged catalog object. The
  /// k-means build runs OUTSIDE the catalog mutex over one snapshot;
  /// installation re-checks that `table` still resolves to the snapshot it
  /// built from and fails with ExecutionError when a re-registration won
  /// the race (the caller may retry over the new data). Like any other
  /// mutation it bumps the catalog version, so cached brute-force plans
  /// are recompiled — and can now rewrite to IndexTopK.
  Status CreateVectorIndex(const std::string& table, const std::string& column,
                           const index::IvfIndex::Options& options = {},
                           uint64_t seed = kDefaultVectorIndexSeed);

  Status DropVectorIndex(const std::string& table, const std::string& column);

  /// Installs a DML result: `replacement` supersedes `name`'s table, whose
  /// live registration must still be `expected` — the snapshot the DML
  /// delta was computed against. The delta computation runs OUTSIDE the
  /// mutex over one snapshot; when another write won the race the
  /// positions in the delta may no longer be valid, so installation fails
  /// with a retryable ExecutionError (the CreateVectorIndex contract) and
  /// the caller re-runs against fresh data. Index entries travel in the
  /// same swap (see Catalog::ApplyWrite). Bumps the catalog version but
  /// NOT the table's schema epoch.
  Status ApplyDmlWrite(
      const std::string& name, const std::shared_ptr<const Table>& expected,
      std::shared_ptr<Table> replacement,
      std::vector<std::shared_ptr<const VectorIndexEntry>> new_entries);

  StatusOr<std::shared_ptr<Table>> GetTable(const std::string& name) const {
    return Snapshot()->GetTable(name);
  }
  uint64_t SchemaEpoch(const std::string& name) const {
    return Snapshot()->SchemaEpoch(name);
  }
  std::vector<std::string> ListTables() const {
    return Snapshot()->ListTables();
  }
  std::shared_ptr<const VectorIndexEntry> FindVectorIndex(
      const std::string& table, const std::string& column) const {
    return Snapshot()->FindVectorIndex(table, column);
  }

 private:
  mutable std::mutex mu_;
  std::shared_ptr<const Catalog> current_;  // guarded by mu_
  uint64_t version_ = 0;                    // guarded by mu_
};

}  // namespace tdp

#endif  // TDP_STORAGE_CATALOG_H_
