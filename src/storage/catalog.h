#ifndef TDP_STORAGE_CATALOG_H_
#define TDP_STORAGE_CATALOG_H_

#include <map>
#include <memory>
#include <string>
#include <vector>

#include "src/common/statusor.h"
#include "src/storage/table.h"

namespace tdp {

/// Name -> table registry backing a TDP session (the paper's
/// `tdp.sql.register_df` target). Names are case-insensitive.
class Catalog {
 public:
  Catalog() = default;

  Catalog(const Catalog&) = delete;
  Catalog& operator=(const Catalog&) = delete;

  /// Registers `table` under `name`. When `replace` is true an existing
  /// table is overwritten (the paper re-registers MNIST_Grid every
  /// training iteration), otherwise AlreadyExists is returned.
  Status RegisterTable(const std::string& name,
                       std::shared_ptr<Table> table, bool replace = true);

  StatusOr<std::shared_ptr<Table>> GetTable(const std::string& name) const;

  Status DropTable(const std::string& name);

  std::vector<std::string> ListTables() const;

 private:
  std::map<std::string, std::shared_ptr<Table>> tables_;  // lowercased keys
};

}  // namespace tdp

#endif  // TDP_STORAGE_CATALOG_H_
