#ifndef TDP_STORAGE_COLUMN_H_
#define TDP_STORAGE_COLUMN_H_

#include <memory>
#include <string>
#include <vector>

#include "src/common/statusor.h"
#include "src/tensor/tensor.h"

namespace tdp {

/// Physical encoding of a column's tensor, per §2 of the paper ("Data
/// Encoding"): TDP does not store raw tensors but *encoded tensors* —
/// tensors plus metadata describing how values are represented. Operators
/// inspect the encoding to pick execution strategies.
enum class Encoding {
  /// Values stored directly. The tensor may be 1-d (scalar column) or
  /// higher-rank (each row is a vector/image/...).
  kPlain = 0,
  /// Order-preserving dictionary: the column stores int64 codes; the
  /// dictionary is sorted so code order equals lexicographic string order
  /// (range predicates run directly on codes).
  kDictionary,
  /// Probability Encoding (PE): each row is a distribution over a class
  /// domain ([n, k] float tensor + k domain values). Produced by ML
  /// classifiers inside TVFs; consumed by soft relational operators.
  kProbability,
};

std::string_view EncodingName(Encoding encoding);

/// One encoded column of a TDP table. Cheap to copy (tensor handles).
class Column {
 public:
  Column() = default;

  /// Plain column over any numeric/bool tensor; rank >= 1; dim 0 is rows.
  static Column Plain(Tensor data);

  /// Dictionary column from pre-built codes + sorted dictionary.
  static Column Dictionary(Tensor codes, std::vector<std::string> dictionary);

  /// Builds an order-preserving dictionary column from raw strings.
  static Column FromStrings(const std::vector<std::string>& values,
                            Device device = Device::kCpu);

  /// PE column: `probs` is [n, k] float32, `domain` the k class values.
  static Column Probability(Tensor probs, std::vector<double> domain);

  bool defined() const { return data_.defined(); }
  Encoding encoding() const { return encoding_; }
  const Tensor& data() const { return data_; }
  /// Number of rows (size of dim 0; rank-0 is disallowed).
  int64_t length() const { return data_.size(0); }
  /// True when each row is itself a tensor (rank >= 2 plain column).
  bool IsTensorColumn() const {
    return encoding_ == Encoding::kPlain && data_.dim() >= 2;
  }

  const std::vector<std::string>& dictionary() const {
    return dictionary_ ? *dictionary_ : EmptyDictionary();
  }
  const std::vector<double>& domain() const {
    return domain_ ? *domain_ : EmptyDomain();
  }

  /// Looks up the code for `value`; -1 if absent. O(log n).
  int64_t DictionaryCode(const std::string& value) const;

  /// First code whose string is >= `value` (may be dictionary size). With
  /// order-preserving encoding this turns string range predicates into
  /// integer comparisons on codes.
  int64_t LowerBoundCode(const std::string& value) const;
  /// First code whose string is > `value`.
  int64_t UpperBoundCode(const std::string& value) const;

  // ---- Decode APIs (paper: "encode/decode APIs to move back and forth") --

  /// Dictionary column -> row strings.
  std::vector<std::string> DecodeStrings() const;

  /// PE column -> hard values: domain[argmax(probs)] as float32 [n].
  /// Plain columns decode to themselves.
  Tensor DecodeValues() const;

  /// Moves the backing tensor to `device`; dictionary metadata is shared.
  Column To(Device device) const;

  /// Rows at `indices` (int64 1-d), preserving encoding + metadata.
  Column Select(const Tensor& indices) const;

  /// Zero-copy view of rows [start, start+count): the backing tensor is
  /// sliced along dim 0 (no allocation), dictionary/domain metadata is
  /// shared. The morsel source for streaming pipelines — a scan hands out
  /// bounded row-range views instead of copying the relation.
  Column SliceRows(int64_t start, int64_t count) const;

  /// Row-wise concatenation. All parts must share encoding, dtype, and
  /// (for dictionary/PE columns) the same dictionary/domain — true by
  /// construction when the parts are morsel outputs of one evaluation.
  static Column Concat(const std::vector<Column>& parts);

  std::string ToString() const;

 private:
  static const std::vector<std::string>& EmptyDictionary();
  static const std::vector<double>& EmptyDomain();

  Encoding encoding_ = Encoding::kPlain;
  Tensor data_;
  // Dictionary/domain metadata is immutable once built and shared across
  // every view of the column (copies, `SliceRows` morsels, `Select`
  // results), so slicing a dictionary column never copies its strings.
  std::shared_ptr<const std::vector<std::string>> dictionary_;  // kDictionary
  std::shared_ptr<const std::vector<double>> domain_;  // kProbability
};

}  // namespace tdp

#endif  // TDP_STORAGE_COLUMN_H_
