#include "src/nn/layers.h"

#include <cmath>

namespace tdp {
namespace nn {
namespace {

// Kaiming-uniform fan-in initialization (PyTorch's default for
// Linear/Conv2d), bound = 1/sqrt(fan_in).
Tensor KaimingUniform(std::vector<int64_t> shape, int64_t fan_in, Rng& rng,
                      Device device) {
  const double bound = fan_in > 0 ? 1.0 / std::sqrt(static_cast<double>(fan_in))
                                  : 0.0;
  return RandUniform(std::move(shape), -bound, bound, rng, DType::kFloat32,
                     device);
}

}  // namespace

Linear::Linear(int64_t in_features, int64_t out_features, Rng& rng,
               bool with_bias, Device device)
    : Module("linear") {
  weight_ = RegisterParameter(
      "weight",
      KaimingUniform({out_features, in_features}, in_features, rng, device));
  if (with_bias) {
    bias_ = RegisterParameter(
        "bias", KaimingUniform({out_features}, in_features, rng, device));
  }
}

Tensor Linear::Forward(const Tensor& input) {
  TDP_CHECK_EQ(input.dim(), 2) << "Linear expects [n, in_features]";
  Tensor out = MatMul(input, Transpose(weight_, 0, 1));
  if (bias_.defined()) out = Add(out, bias_);
  return out;
}

Conv2dLayer::Conv2dLayer(int64_t in_channels, int64_t out_channels,
                         int64_t kernel, int64_t stride, int64_t padding,
                         Rng& rng, bool with_bias, Device device)
    : Module("conv2d"), stride_(stride), padding_(padding) {
  const int64_t fan_in = in_channels * kernel * kernel;
  weight_ = RegisterParameter(
      "weight", KaimingUniform({out_channels, in_channels, kernel, kernel},
                               fan_in, rng, device));
  if (with_bias) {
    bias_ = RegisterParameter(
        "bias", KaimingUniform({out_channels}, fan_in, rng, device));
  }
}

Tensor Conv2dLayer::Forward(const Tensor& input) {
  return Conv2d(input, weight_, bias_, stride_, padding_);
}

Sequential::Sequential(std::vector<std::shared_ptr<Module>> layers)
    : Module("sequential"), layers_(std::move(layers)) {
  for (size_t i = 0; i < layers_.size(); ++i) {
    RegisterModule(std::to_string(i), layers_[i]);
  }
}

Tensor Sequential::Forward(const Tensor& input) {
  Tensor x = input;
  for (const auto& layer : layers_) x = layer->Forward(x);
  return x;
}

}  // namespace nn
}  // namespace tdp
