#ifndef TDP_NN_OPTIM_H_
#define TDP_NN_OPTIM_H_

#include <vector>

#include "src/tensor/tensor.h"

namespace tdp {
namespace nn {

/// Gradient-descent optimizer over a fixed parameter list (the tensors are
/// shared handles into modules / compiled queries; updates are in place).
class Optimizer {
 public:
  virtual ~Optimizer() = default;

  Optimizer(const Optimizer&) = delete;
  Optimizer& operator=(const Optimizer&) = delete;

  /// Applies one update using each parameter's accumulated `.grad()`.
  /// Parameters with no gradient are skipped.
  virtual void Step() = 0;

  /// Clears all parameter gradients.
  void ZeroGrad();

  const std::vector<Tensor>& parameters() const { return params_; }

 protected:
  explicit Optimizer(std::vector<Tensor> params);

  std::vector<Tensor> params_;
};

/// SGD with optional momentum.
class SGD : public Optimizer {
 public:
  SGD(std::vector<Tensor> params, double lr, double momentum = 0.0);
  void Step() override;

 private:
  double lr_;
  double momentum_;
  std::vector<Tensor> velocity_;  // lazily sized to params
};

/// Adam (Kingma & Ba) — the optimizer the paper uses in Listing 5.
class Adam : public Optimizer {
 public:
  Adam(std::vector<Tensor> params, double lr, double beta1 = 0.9,
       double beta2 = 0.999, double eps = 1e-8);
  void Step() override;

 private:
  double lr_, beta1_, beta2_, eps_;
  int64_t step_count_ = 0;
  std::vector<Tensor> m_;
  std::vector<Tensor> v_;
};

}  // namespace nn
}  // namespace tdp

#endif  // TDP_NN_OPTIM_H_
