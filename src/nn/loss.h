#ifndef TDP_NN_LOSS_H_
#define TDP_NN_LOSS_H_

#include "src/tensor/tensor.h"

namespace tdp {
namespace nn {

/// mean((pred - target)^2) over all elements — the loss used by the
/// paper's MNISTGrid training loop (Listing 5).
Tensor MSELoss(const Tensor& pred, const Tensor& target);

/// Softmax cross-entropy between `logits` [n, classes] and int64 class
/// `targets` [n]; mean over the batch.
Tensor SoftmaxCrossEntropyLoss(const Tensor& logits, const Tensor& targets);

/// Cross-entropy against a full target distribution [n, classes].
Tensor SoftCrossEntropyLoss(const Tensor& logits,
                            const Tensor& target_probs);

}  // namespace nn
}  // namespace tdp

#endif  // TDP_NN_LOSS_H_
