#include "src/nn/optim.h"

#include <cmath>

#include "src/common/logging.h"
#include "src/tensor/ops.h"

namespace tdp {
namespace nn {

Optimizer::Optimizer(std::vector<Tensor> params)
    : params_(std::move(params)) {
  for (const Tensor& p : params_) {
    TDP_CHECK(p.defined() && p.dtype() == DType::kFloat32)
        << "optimizers operate on float32 parameters";
    TDP_CHECK(p.is_contiguous()) << "parameters must be contiguous";
  }
}

void Optimizer::ZeroGrad() {
  for (const Tensor& p : params_) p.ZeroGrad();
}

SGD::SGD(std::vector<Tensor> params, double lr, double momentum)
    : Optimizer(std::move(params)), lr_(lr), momentum_(momentum) {
  velocity_.resize(params_.size());
}

void SGD::Step() {
  for (size_t i = 0; i < params_.size(); ++i) {
    Tensor& p = params_[i];
    const Tensor g = p.grad();
    if (!g.defined()) continue;
    const Tensor gc = g.Contiguous();
    float* w = p.data<float>();
    const float* gp = gc.data<float>();
    const int64_t n = p.numel();
    if (momentum_ != 0.0) {
      if (!velocity_[i].defined()) {
        velocity_[i] = Tensor::Zeros(p.shape(), DType::kFloat32, p.device());
      }
      float* v = velocity_[i].data<float>();
      for (int64_t j = 0; j < n; ++j) {
        v[j] = static_cast<float>(momentum_ * v[j] + gp[j]);
        w[j] -= static_cast<float>(lr_ * v[j]);
      }
    } else {
      for (int64_t j = 0; j < n; ++j) {
        w[j] -= static_cast<float>(lr_ * gp[j]);
      }
    }
  }
}

Adam::Adam(std::vector<Tensor> params, double lr, double beta1, double beta2,
           double eps)
    : Optimizer(std::move(params)),
      lr_(lr),
      beta1_(beta1),
      beta2_(beta2),
      eps_(eps) {
  m_.resize(params_.size());
  v_.resize(params_.size());
}

void Adam::Step() {
  ++step_count_;
  const double bias1 = 1.0 - std::pow(beta1_, static_cast<double>(step_count_));
  const double bias2 = 1.0 - std::pow(beta2_, static_cast<double>(step_count_));
  for (size_t i = 0; i < params_.size(); ++i) {
    Tensor& p = params_[i];
    const Tensor g = p.grad();
    if (!g.defined()) continue;
    if (!m_[i].defined()) {
      m_[i] = Tensor::Zeros(p.shape(), DType::kFloat32, p.device());
      v_[i] = Tensor::Zeros(p.shape(), DType::kFloat32, p.device());
    }
    const Tensor gc = g.Contiguous();
    float* w = p.data<float>();
    const float* gp = gc.data<float>();
    float* m = m_[i].data<float>();
    float* v = v_[i].data<float>();
    const int64_t n = p.numel();
    for (int64_t j = 0; j < n; ++j) {
      m[j] = static_cast<float>(beta1_ * m[j] + (1.0 - beta1_) * gp[j]);
      v[j] = static_cast<float>(beta2_ * v[j] +
                                (1.0 - beta2_) * gp[j] * gp[j]);
      const double mhat = m[j] / bias1;
      const double vhat = v[j] / bias2;
      w[j] -= static_cast<float>(lr_ * mhat / (std::sqrt(vhat) + eps_));
    }
  }
}

}  // namespace nn
}  // namespace tdp
