#include "src/nn/module.h"

#include "src/common/logging.h"

namespace tdp {
namespace nn {

Tensor Module::RegisterParameter(std::string param_name, Tensor value) {
  TDP_CHECK(value.defined());
  value.set_requires_grad(true);
  params_.emplace_back(std::move(param_name), value);
  return value;
}

void Module::RegisterModule(std::string child_name,
                            std::shared_ptr<Module> child) {
  TDP_CHECK(child != nullptr);
  children_.emplace_back(std::move(child_name), std::move(child));
}

std::vector<Tensor> Module::Parameters() const {
  std::vector<Tensor> out;
  for (const auto& [unused_name, tensor] : params_) out.push_back(tensor);
  for (const auto& [unused_name, child] : children_) {
    for (const Tensor& t : child->Parameters()) out.push_back(t);
  }
  return out;
}

std::vector<std::pair<std::string, Tensor>> Module::NamedParameters() const {
  std::vector<std::pair<std::string, Tensor>> out;
  for (const auto& [param_name, tensor] : params_) {
    out.emplace_back(param_name, tensor);
  }
  for (const auto& [child_name, child] : children_) {
    for (auto& [sub_name, tensor] : child->NamedParameters()) {
      out.emplace_back(child_name + "." + sub_name, tensor);
    }
  }
  return out;
}

void Module::ZeroGrad() const {
  for (const Tensor& t : Parameters()) t.ZeroGrad();
}

int64_t Module::NumParameters() const {
  int64_t n = 0;
  for (const Tensor& t : Parameters()) n += t.numel();
  return n;
}

}  // namespace nn
}  // namespace tdp
