#ifndef TDP_NN_LAYERS_H_
#define TDP_NN_LAYERS_H_

#include <memory>
#include <vector>

#include "src/common/rng.h"
#include "src/nn/module.h"

namespace tdp {
namespace nn {

/// y = x @ W^T + b for x: [n, in_features].
class Linear : public Module {
 public:
  Linear(int64_t in_features, int64_t out_features, Rng& rng,
         bool with_bias = true, Device device = Device::kAccel);

  Tensor Forward(const Tensor& input) override;

  const Tensor& weight() const { return weight_; }  // [out, in]
  const Tensor& bias() const { return bias_; }      // [out] or undefined

 private:
  Tensor weight_;
  Tensor bias_;
};

/// 2-d convolution over [N, C, H, W] with square kernel.
class Conv2dLayer : public Module {
 public:
  Conv2dLayer(int64_t in_channels, int64_t out_channels, int64_t kernel,
              int64_t stride, int64_t padding, Rng& rng,
              bool with_bias = true, Device device = Device::kAccel);

  Tensor Forward(const Tensor& input) override;

  const Tensor& weight() const { return weight_; }

 private:
  Tensor weight_;
  Tensor bias_;
  int64_t stride_;
  int64_t padding_;
};

/// Elementwise max(x, 0).
class ReluLayer : public Module {
 public:
  ReluLayer() : Module("relu") {}
  Tensor Forward(const Tensor& input) override { return Relu(input); }
};

/// Elementwise tanh.
class TanhLayer : public Module {
 public:
  TanhLayer() : Module("tanh") {}
  Tensor Forward(const Tensor& input) override { return Tanh(input); }
};

class MaxPool2dLayer : public Module {
 public:
  MaxPool2dLayer(int64_t kernel, int64_t stride)
      : Module("maxpool2d"), kernel_(kernel), stride_(stride) {}
  Tensor Forward(const Tensor& input) override {
    return MaxPool2d(input, kernel_, stride_);
  }

 private:
  int64_t kernel_;
  int64_t stride_;
};

/// Collapses all trailing dims: [n, ...] -> [n, prod(...)].
class FlattenLayer : public Module {
 public:
  FlattenLayer() : Module("flatten") {}
  Tensor Forward(const Tensor& input) override {
    return Reshape(input, {input.size(0), -1});
  }
};

/// Softmax over the last dimension.
class SoftmaxLayer : public Module {
 public:
  SoftmaxLayer() : Module("softmax") {}
  Tensor Forward(const Tensor& input) override {
    return Softmax(input, -1);
  }
};

/// Runs children in order.
class Sequential : public Module {
 public:
  explicit Sequential(std::vector<std::shared_ptr<Module>> layers);
  Tensor Forward(const Tensor& input) override;

 private:
  std::vector<std::shared_ptr<Module>> layers_;
};

}  // namespace nn
}  // namespace tdp

#endif  // TDP_NN_LAYERS_H_
