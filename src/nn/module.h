#ifndef TDP_NN_MODULE_H_
#define TDP_NN_MODULE_H_

#include <memory>
#include <string>
#include <utility>
#include <vector>

#include "src/tensor/ops.h"
#include "src/tensor/tensor.h"

namespace tdp {
namespace nn {

/// Base class for neural-network building blocks (PyTorch nn.Module
/// analogue). Owns trainable parameter tensors and child modules;
/// `Parameters()` walks the tree, which is how TDP's `CompiledQuery`
/// surfaces everything trainable inside a query's UDFs/TVFs.
class Module {
 public:
  virtual ~Module() = default;

  Module(const Module&) = delete;
  Module& operator=(const Module&) = delete;

  /// Computes the module's output for `input`.
  virtual Tensor Forward(const Tensor& input) = 0;

  /// All parameters of this module and its descendants (shared handles —
  /// mutating them updates the module).
  std::vector<Tensor> Parameters() const;

  /// Named flat view ("child.weight"-style keys), for checkpoint-like tests.
  std::vector<std::pair<std::string, Tensor>> NamedParameters() const;

  /// Clears gradients on every parameter.
  void ZeroGrad() const;

  /// Number of scalar trainable parameters in the subtree.
  int64_t NumParameters() const;

  const std::string& name() const { return name_; }

 protected:
  explicit Module(std::string name) : name_(std::move(name)) {}

  /// Registers a trainable tensor (sets requires_grad).
  Tensor RegisterParameter(std::string param_name, Tensor value);
  /// Registers a child whose parameters are included in Parameters().
  void RegisterModule(std::string child_name, std::shared_ptr<Module> child);

  const std::vector<std::pair<std::string, std::shared_ptr<Module>>>&
  children() const {
    return children_;
  }

 private:
  std::string name_;
  std::vector<std::pair<std::string, Tensor>> params_;
  std::vector<std::pair<std::string, std::shared_ptr<Module>>> children_;
};

}  // namespace nn
}  // namespace tdp

#endif  // TDP_NN_MODULE_H_
