#include "src/nn/loss.h"

#include "src/common/logging.h"
#include "src/tensor/ops.h"

namespace tdp {
namespace nn {

Tensor MSELoss(const Tensor& pred, const Tensor& target) {
  TDP_CHECK(pred.shape() == target.shape())
      << "MSELoss shapes: " << ShapeToString(pred.shape()) << " vs "
      << ShapeToString(target.shape());
  const Tensor diff = Sub(pred, target);
  return Mean(Mul(diff, diff));
}

Tensor SoftmaxCrossEntropyLoss(const Tensor& logits, const Tensor& targets) {
  TDP_CHECK_EQ(logits.dim(), 2);
  TDP_CHECK(targets.dtype() == DType::kInt64);
  TDP_CHECK_EQ(targets.numel(), logits.size(0));
  const Tensor log_probs = LogSoftmax(logits, 1);
  const Tensor onehot =
      OneHot(targets.To(Device::kCpu), logits.size(1)).To(logits.device());
  // -sum(onehot * log_probs) / n
  return Neg(DivScalar(Sum(Mul(onehot, log_probs)),
                       static_cast<double>(logits.size(0))));
}

Tensor SoftCrossEntropyLoss(const Tensor& logits, const Tensor& target_probs) {
  TDP_CHECK(logits.shape() == target_probs.shape());
  const Tensor log_probs = LogSoftmax(logits, 1);
  return Neg(DivScalar(Sum(Mul(target_probs, log_probs)),
                       static_cast<double>(logits.size(0))));
}

}  // namespace nn
}  // namespace tdp
