#include "src/common/status.h"

namespace tdp {

std::string_view StatusCodeToString(StatusCode code) {
  switch (code) {
    case StatusCode::kOk:
      return "OK";
    case StatusCode::kInvalidArgument:
      return "InvalidArgument";
    case StatusCode::kNotFound:
      return "NotFound";
    case StatusCode::kAlreadyExists:
      return "AlreadyExists";
    case StatusCode::kOutOfRange:
      return "OutOfRange";
    case StatusCode::kUnimplemented:
      return "Unimplemented";
    case StatusCode::kInternal:
      return "Internal";
    case StatusCode::kTypeError:
      return "TypeError";
    case StatusCode::kParseError:
      return "ParseError";
    case StatusCode::kBindError:
      return "BindError";
    case StatusCode::kExecutionError:
      return "ExecutionError";
    case StatusCode::kCancelled:
      return "Cancelled";
    case StatusCode::kResourceExhausted:
      return "ResourceExhausted";
  }
  return "Unknown";
}

std::string Status::ToString() const {
  if (ok()) return "OK";
  std::string result(StatusCodeToString(code_));
  result += ": ";
  result += message_;
  return result;
}

}  // namespace tdp
