#ifndef TDP_COMMON_THREAD_POOL_H_
#define TDP_COMMON_THREAD_POOL_H_

#include <algorithm>
#include <cstdint>
#include <deque>
#include <functional>
#include <limits>
#include <mutex>
#include <thread>
#include <vector>

#include <condition_variable>

namespace tdp {

/// A fixed-size pool of worker threads used by the tensor kernels and the
/// query operators for morsel-style intra-operator parallelism.
///
/// Design notes:
///   - Static partitioning only: `ParallelFor` splits `[begin, end)` into at
///     most `num_threads()` contiguous shards and hands each shard to one
///     worker. There is no work stealing; kernels with uniform per-element
///     cost (elementwise loops, matmul rows, conv batches) are the targets.
///   - The calling thread executes the first shard itself, so a pool of size
///     N uses N OS threads total, not N+1, and a pool of size 1 never leaves
///     the calling thread (bit-for-bit identical to the serial code).
///   - Nested `ParallelFor` calls run inline on the calling worker. This
///     keeps arbitrary kernel composition deadlock-free (workers never block
///     waiting for other workers).
///   - Exceptions thrown by `fn` are captured and the first one is rethrown
///     on the calling thread after all shards finish.
///
/// Determinism: parallelizing over independent output elements never changes
/// results. Kernels that *reduce* floating-point values across the index
/// space must instead accumulate fixed-size blocks (independent of the
/// thread count) and combine the partials in block order — see `Sum` in
/// `src/tensor/ops_reduce.cc`. With that discipline, results are identical
/// for every value of `TDP_NUM_THREADS`.
class ThreadPool {
 public:
  /// Creates a pool with `num_threads` total threads (minimum 1). A pool of
  /// size 1 spawns no workers.
  explicit ThreadPool(int num_threads);
  ~ThreadPool();

  ThreadPool(const ThreadPool&) = delete;
  ThreadPool& operator=(const ThreadPool&) = delete;

  /// Total threads participating in a ParallelFor (workers + caller).
  int num_threads() const { return num_threads_; }

  /// Runs `fn(shard_begin, shard_end)` over a static partition of
  /// `[begin, end)`. Each shard spans at least `grain` indices (except
  /// possibly the last), so small ranges run inline on the caller with no
  /// synchronization. `fn` must be safe to invoke concurrently on disjoint
  /// shards. Blocks until every shard has finished.
  void ParallelFor(int64_t begin, int64_t end, int64_t grain,
                   const std::function<void(int64_t, int64_t)>& fn);

  /// The process-wide pool used by the kernels. Sized on first use from the
  /// `TDP_NUM_THREADS` environment variable, defaulting to
  /// `std::thread::hardware_concurrency()`. Set `TDP_NUM_THREADS=1` for
  /// fully serial, deterministic-by-construction execution (the ctest
  /// harness does this).
  static ThreadPool& Global();

  /// Replaces the global pool with one of `num_threads` threads. Intended
  /// for benchmarks and tests that compare thread counts within a single
  /// process; not safe to call while another thread is inside ParallelFor.
  static void SetGlobalNumThreads(int num_threads);

 private:
  /// A queued shard, tagged with its originating ParallelFor call so the
  /// caller's help-loop can pick up its own shards without executing (and
  /// blocking on) work submitted by unrelated concurrent calls.
  struct Task {
    const void* tag;
    std::function<void()> fn;
  };

  void WorkerLoop();

  int num_threads_;
  std::vector<std::thread> workers_;
  std::mutex mu_;
  std::condition_variable cv_;
  std::deque<Task> queue_;
  bool stop_ = false;
};

/// RAII override of the global pool size for tests and benchmarks that
/// compare thread counts within one process. On destruction the pool is
/// rebuilt at its previous size, so overrides nest correctly and cannot
/// leak into unrelated code.
class ScopedNumThreads {
 public:
  explicit ScopedNumThreads(int num_threads);
  ~ScopedNumThreads();

  ScopedNumThreads(const ScopedNumThreads&) = delete;
  ScopedNumThreads& operator=(const ScopedNumThreads&) = delete;

 private:
  int saved_;
};

/// Convenience wrapper: `ThreadPool::Global().ParallelFor(...)`.
void ParallelFor(int64_t begin, int64_t end, int64_t grain,
                 const std::function<void(int64_t, int64_t)>& fn);

/// Grain size such that each shard performs at least `min_shard_work` units
/// of work, given that one loop index costs `per_index_cost` units. Keeps
/// ParallelFor from splitting loops too small to amortize dispatch.
inline int64_t GrainForCost(int64_t per_index_cost,
                            int64_t min_shard_work = int64_t{1} << 15) {
  return std::max<int64_t>(
      1, min_shard_work / std::max<int64_t>(per_index_cost, 1));
}

/// Saturating product of non-negative cost factors: clamps to INT64_MAX
/// instead of wrapping. Cost estimates feed `GrainForCost`, where
/// adversarially large shapes (e.g. a [2^21 x 2^21] x [2^21 x 2^21]
/// matmul's m*k*n) would otherwise signed-overflow — UB — before the pool
/// ever shards the loop. Any clamped value already means "one index is
/// more than enough work per shard", so precision past the clamp is moot.
inline int64_t SaturatingCostProduct(int64_t a, int64_t b) {
  int64_t out = 0;
  if (__builtin_mul_overflow(a, b, &out)) {
    return std::numeric_limits<int64_t>::max();
  }
  return out;
}

inline int64_t SaturatingCostProduct(int64_t a, int64_t b, int64_t c) {
  return SaturatingCostProduct(SaturatingCostProduct(a, b), c);
}

}  // namespace tdp

#endif  // TDP_COMMON_THREAD_POOL_H_
