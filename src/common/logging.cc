#include "src/common/logging.h"

#include <cstdio>
#include <cstdlib>

namespace tdp {
namespace internal_logging {
namespace {

Severity g_min_severity = Severity::kInfo;

const char* SeverityName(Severity severity) {
  switch (severity) {
    case Severity::kInfo:
      return "INFO";
    case Severity::kWarning:
      return "WARNING";
    case Severity::kError:
      return "ERROR";
    case Severity::kFatal:
      return "FATAL";
  }
  return "UNKNOWN";
}

}  // namespace

void SetMinLogSeverity(Severity severity) { g_min_severity = severity; }
Severity MinLogSeverity() { return g_min_severity; }

LogMessage::LogMessage(Severity severity, const char* file, int line)
    : severity_(severity) {
  stream_ << "[" << SeverityName(severity) << " " << file << ":" << line
          << "] ";
}

LogMessage::~LogMessage() {
  if (severity_ >= g_min_severity || severity_ == Severity::kFatal) {
    std::fprintf(stderr, "%s\n", stream_.str().c_str());
    std::fflush(stderr);
  }
  if (severity_ == Severity::kFatal) {
    std::abort();
  }
}

}  // namespace internal_logging
}  // namespace tdp
