#ifndef TDP_COMMON_LOGGING_H_
#define TDP_COMMON_LOGGING_H_

#include <sstream>
#include <string>

namespace tdp {
namespace internal_logging {

enum class Severity { kInfo = 0, kWarning = 1, kError = 2, kFatal = 3 };

/// Stream-style log message; emits on destruction. `kFatal` aborts the
/// process after emitting, so `TDP_CHECK` failures cannot be swallowed.
class LogMessage {
 public:
  LogMessage(Severity severity, const char* file, int line);
  ~LogMessage();

  LogMessage(const LogMessage&) = delete;
  LogMessage& operator=(const LogMessage&) = delete;

  template <typename T>
  LogMessage& operator<<(const T& value) {
    stream_ << value;
    return *this;
  }

 private:
  Severity severity_;
  std::ostringstream stream_;
};

/// Minimum severity that is actually emitted (kFatal always is). Tests can
/// raise this to silence expected warnings.
void SetMinLogSeverity(Severity severity);
Severity MinLogSeverity();

}  // namespace internal_logging
}  // namespace tdp

#define TDP_LOG(severity)                                      \
  ::tdp::internal_logging::LogMessage(                         \
      ::tdp::internal_logging::Severity::k##severity, __FILE__, __LINE__)

/// Fatal-on-failure invariant check. Use for programmer errors (shape
/// mismatches in kernels, broken internal state), not for user input —
/// user input is validated with Status returns.
#define TDP_CHECK(condition)        \
  if (!(condition))                 \
  TDP_LOG(Fatal) << "Check failed: " #condition " "

#define TDP_CHECK_EQ(a, b) TDP_CHECK((a) == (b)) << "(" << (a) << " vs " << (b) << ") "
#define TDP_CHECK_NE(a, b) TDP_CHECK((a) != (b)) << "(" << (a) << " vs " << (b) << ") "
#define TDP_CHECK_LT(a, b) TDP_CHECK((a) < (b)) << "(" << (a) << " vs " << (b) << ") "
#define TDP_CHECK_LE(a, b) TDP_CHECK((a) <= (b)) << "(" << (a) << " vs " << (b) << ") "
#define TDP_CHECK_GT(a, b) TDP_CHECK((a) > (b)) << "(" << (a) << " vs " << (b) << ") "
#define TDP_CHECK_GE(a, b) TDP_CHECK((a) >= (b)) << "(" << (a) << " vs " << (b) << ") "

#ifdef NDEBUG
#define TDP_DCHECK(condition) \
  if (false) TDP_LOG(Fatal) << ""
#else
#define TDP_DCHECK(condition) TDP_CHECK(condition)
#endif

#endif  // TDP_COMMON_LOGGING_H_
