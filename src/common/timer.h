#ifndef TDP_COMMON_TIMER_H_
#define TDP_COMMON_TIMER_H_

#include <chrono>

namespace tdp {

/// Wall-clock stopwatch used by the experiment harnesses.
class Timer {
 public:
  Timer() : start_(Clock::now()) {}

  /// Restarts the stopwatch.
  void Reset() { start_ = Clock::now(); }

  /// Elapsed seconds since construction or last Reset().
  double ElapsedSeconds() const {
    return std::chrono::duration<double>(Clock::now() - start_).count();
  }

  /// Elapsed milliseconds since construction or last Reset().
  double ElapsedMillis() const { return ElapsedSeconds() * 1e3; }

 private:
  using Clock = std::chrono::steady_clock;
  Clock::time_point start_;
};

}  // namespace tdp

#endif  // TDP_COMMON_TIMER_H_
