#ifndef TDP_COMMON_STRING_UTIL_H_
#define TDP_COMMON_STRING_UTIL_H_

#include <string>
#include <string_view>
#include <vector>

namespace tdp {

/// ASCII-lowercases `s` (SQL keywords and identifiers are case-insensitive).
std::string ToLower(std::string_view s);

/// ASCII-uppercases `s`.
std::string ToUpper(std::string_view s);

/// Removes leading/trailing whitespace.
std::string_view StripWhitespace(std::string_view s);

/// Splits on `delim`, keeping empty pieces.
std::vector<std::string> Split(std::string_view s, char delim);

/// Joins `pieces` with `sep`.
std::string Join(const std::vector<std::string>& pieces,
                 std::string_view sep);

/// True if `s` equals `target` ignoring ASCII case.
bool EqualsIgnoreCase(std::string_view s, std::string_view target);

/// True if `s` starts with `prefix`.
bool StartsWith(std::string_view s, std::string_view prefix);

}  // namespace tdp

#endif  // TDP_COMMON_STRING_UTIL_H_
