#ifndef TDP_COMMON_RNG_H_
#define TDP_COMMON_RNG_H_

#include <cstdint>
#include <vector>

namespace tdp {

/// Deterministic, splittable pseudo-random generator (xoshiro256**).
///
/// All synthetic datasets and weight initializers in TDP draw from `Rng`
/// so experiments are exactly reproducible across runs and platforms
/// (no reliance on libstdc++ distribution implementations).
class Rng {
 public:
  explicit Rng(uint64_t seed = 0x9E3779B97F4A7C15ull);

  /// Next raw 64-bit value.
  uint64_t NextUint64();

  /// Uniform in [0, n). `n` must be > 0.
  uint64_t NextUint64(uint64_t n);

  /// Uniform integer in [lo, hi] inclusive.
  int64_t UniformInt(int64_t lo, int64_t hi);

  /// Uniform float in [0, 1).
  double UniformDouble();

  /// Uniform float in [lo, hi).
  double Uniform(double lo, double hi);

  /// Standard normal via Box-Muller.
  double Normal(double mean = 0.0, double stddev = 1.0);

  /// Laplace(0, scale) sample — used by the label-DP mechanism.
  double Laplace(double scale);

  /// Bernoulli(p).
  bool Bernoulli(double p);

  /// Returns a uniformly random permutation of [0, n).
  std::vector<int64_t> Permutation(int64_t n);

  /// Derives an independent child generator; stable given call order.
  Rng Split();

 private:
  uint64_t state_[4];
  bool has_cached_normal_ = false;
  double cached_normal_ = 0.0;
};

}  // namespace tdp

#endif  // TDP_COMMON_RNG_H_
