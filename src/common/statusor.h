#ifndef TDP_COMMON_STATUSOR_H_
#define TDP_COMMON_STATUSOR_H_

#include <optional>
#include <utility>

#include "src/common/logging.h"
#include "src/common/status.h"

namespace tdp {

/// Either a value of type `T` or an error `Status` — the TDP analogue of
/// `absl::StatusOr`. Accessing the value of an errored `StatusOr` is a
/// fatal programming error (checked via `TDP_CHECK`).
template <typename T>
class StatusOr {
 public:
  /// Constructs from an error status. `status` must not be OK.
  StatusOr(Status status) : status_(std::move(status)) {  // NOLINT: implicit
    TDP_CHECK(!status_.ok()) << "StatusOr constructed from OK status";
  }

  /// Constructs from a value.
  StatusOr(T value) : value_(std::move(value)) {}  // NOLINT: implicit

  bool ok() const { return status_.ok(); }
  const Status& status() const { return status_; }

  const T& value() const& {
    TDP_CHECK(ok()) << "StatusOr::value on error: " << status_.ToString();
    return *value_;
  }
  T& value() & {
    TDP_CHECK(ok()) << "StatusOr::value on error: " << status_.ToString();
    return *value_;
  }
  T&& value() && {
    TDP_CHECK(ok()) << "StatusOr::value on error: " << status_.ToString();
    return std::move(*value_);
  }

  const T& operator*() const& { return value(); }
  T& operator*() & { return value(); }
  const T* operator->() const { return &value(); }
  T* operator->() { return &value(); }

 private:
  Status status_;
  std::optional<T> value_;
};

/// Evaluates `rexpr` (a StatusOr expression); on error returns the status,
/// otherwise assigns the value to `lhs`.
#define TDP_ASSIGN_OR_RETURN(lhs, rexpr)                        \
  TDP_ASSIGN_OR_RETURN_IMPL_(                                   \
      TDP_STATUS_MACRO_CONCAT_(_tdp_statusor, __LINE__), lhs, rexpr)

#define TDP_STATUS_MACRO_CONCAT_INNER_(x, y) x##y
#define TDP_STATUS_MACRO_CONCAT_(x, y) TDP_STATUS_MACRO_CONCAT_INNER_(x, y)

#define TDP_ASSIGN_OR_RETURN_IMPL_(statusor, lhs, rexpr) \
  auto statusor = (rexpr);                               \
  if (!statusor.ok()) return statusor.status();          \
  lhs = std::move(statusor).value()

}  // namespace tdp

#endif  // TDP_COMMON_STATUSOR_H_
