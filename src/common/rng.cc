#include "src/common/rng.h"

#include <cmath>
#include <numbers>

#include "src/common/logging.h"

namespace tdp {
namespace {

uint64_t SplitMix64(uint64_t& x) {
  x += 0x9E3779B97F4A7C15ull;
  uint64_t z = x;
  z = (z ^ (z >> 30)) * 0xBF58476D1CE4E5B9ull;
  z = (z ^ (z >> 27)) * 0x94D049BB133111EBull;
  return z ^ (z >> 31);
}

uint64_t Rotl(uint64_t x, int k) { return (x << k) | (x >> (64 - k)); }

}  // namespace

Rng::Rng(uint64_t seed) {
  uint64_t sm = seed;
  for (auto& s : state_) s = SplitMix64(sm);
}

uint64_t Rng::NextUint64() {
  const uint64_t result = Rotl(state_[1] * 5, 7) * 9;
  const uint64_t t = state_[1] << 17;
  state_[2] ^= state_[0];
  state_[3] ^= state_[1];
  state_[1] ^= state_[2];
  state_[0] ^= state_[3];
  state_[2] ^= t;
  state_[3] = Rotl(state_[3], 45);
  return result;
}

uint64_t Rng::NextUint64(uint64_t n) {
  TDP_CHECK_GT(n, 0u);
  // Rejection sampling to avoid modulo bias.
  const uint64_t threshold = -n % n;
  for (;;) {
    uint64_t r = NextUint64();
    if (r >= threshold) return r % n;
  }
}

int64_t Rng::UniformInt(int64_t lo, int64_t hi) {
  TDP_CHECK_LE(lo, hi);
  return lo + static_cast<int64_t>(
                  NextUint64(static_cast<uint64_t>(hi - lo) + 1));
}

double Rng::UniformDouble() {
  return static_cast<double>(NextUint64() >> 11) * 0x1.0p-53;
}

double Rng::Uniform(double lo, double hi) {
  return lo + (hi - lo) * UniformDouble();
}

double Rng::Normal(double mean, double stddev) {
  if (has_cached_normal_) {
    has_cached_normal_ = false;
    return mean + stddev * cached_normal_;
  }
  double u1 = 0.0;
  do {
    u1 = UniformDouble();
  } while (u1 <= 1e-300);
  const double u2 = UniformDouble();
  const double r = std::sqrt(-2.0 * std::log(u1));
  const double theta = 2.0 * std::numbers::pi * u2;
  cached_normal_ = r * std::sin(theta);
  has_cached_normal_ = true;
  return mean + stddev * r * std::cos(theta);
}

double Rng::Laplace(double scale) {
  const double u = UniformDouble() - 0.5;
  const double sign = u < 0 ? -1.0 : 1.0;
  return -scale * sign * std::log(1.0 - 2.0 * std::abs(u));
}

bool Rng::Bernoulli(double p) { return UniformDouble() < p; }

std::vector<int64_t> Rng::Permutation(int64_t n) {
  std::vector<int64_t> perm(static_cast<size_t>(n));
  for (int64_t i = 0; i < n; ++i) perm[static_cast<size_t>(i)] = i;
  for (int64_t i = n - 1; i > 0; --i) {
    const int64_t j =
        static_cast<int64_t>(NextUint64(static_cast<uint64_t>(i) + 1));
    std::swap(perm[static_cast<size_t>(i)], perm[static_cast<size_t>(j)]);
  }
  return perm;
}

Rng Rng::Split() { return Rng(NextUint64()); }

}  // namespace tdp
