#include "src/common/string_util.h"

#include <algorithm>
#include <cctype>

namespace tdp {

std::string ToLower(std::string_view s) {
  std::string out(s);
  std::transform(out.begin(), out.end(), out.begin(), [](unsigned char c) {
    return static_cast<char>(std::tolower(c));
  });
  return out;
}

std::string ToUpper(std::string_view s) {
  std::string out(s);
  std::transform(out.begin(), out.end(), out.begin(), [](unsigned char c) {
    return static_cast<char>(std::toupper(c));
  });
  return out;
}

std::string_view StripWhitespace(std::string_view s) {
  size_t begin = 0;
  while (begin < s.size() && std::isspace(static_cast<unsigned char>(s[begin]))) {
    ++begin;
  }
  size_t end = s.size();
  while (end > begin && std::isspace(static_cast<unsigned char>(s[end - 1]))) {
    --end;
  }
  return s.substr(begin, end - begin);
}

std::vector<std::string> Split(std::string_view s, char delim) {
  std::vector<std::string> pieces;
  size_t start = 0;
  for (size_t i = 0; i <= s.size(); ++i) {
    if (i == s.size() || s[i] == delim) {
      pieces.emplace_back(s.substr(start, i - start));
      start = i + 1;
    }
  }
  return pieces;
}

std::string Join(const std::vector<std::string>& pieces,
                 std::string_view sep) {
  std::string out;
  for (size_t i = 0; i < pieces.size(); ++i) {
    if (i > 0) out += sep;
    out += pieces[i];
  }
  return out;
}

bool EqualsIgnoreCase(std::string_view s, std::string_view target) {
  if (s.size() != target.size()) return false;
  for (size_t i = 0; i < s.size(); ++i) {
    if (std::tolower(static_cast<unsigned char>(s[i])) !=
        std::tolower(static_cast<unsigned char>(target[i]))) {
      return false;
    }
  }
  return true;
}

bool StartsWith(std::string_view s, std::string_view prefix) {
  return s.size() >= prefix.size() && s.substr(0, prefix.size()) == prefix;
}

}  // namespace tdp
