#ifndef TDP_COMMON_STATUS_H_
#define TDP_COMMON_STATUS_H_

#include <string>
#include <string_view>
#include <utility>

namespace tdp {

/// Machine-readable classification of an error, modeled after the
/// RocksDB/Arrow status idiom. `kOk` is the only non-error code.
enum class StatusCode {
  kOk = 0,
  kInvalidArgument,
  kNotFound,
  kAlreadyExists,
  kOutOfRange,
  kUnimplemented,
  kInternal,
  kTypeError,
  kParseError,
  kBindError,
  kExecutionError,
  kCancelled,
  /// Load shedding: the serving front end refused the request (admission
  /// queue full, or estimated plan footprint beyond the configured
  /// ceiling). Retryable after backoff; the engine sheds instead of
  /// collapsing.
  kResourceExhausted,
};

/// Returns a stable human-readable name for `code` (e.g. "InvalidArgument").
std::string_view StatusCodeToString(StatusCode code);

/// Result of an operation that can fail without a payload.
///
/// `Status` is cheap to copy in the OK case (no allocation) and carries a
/// code plus message otherwise. All user-facing TDP entry points (SQL
/// parsing, binding, planning, execution, ingestion, UDF registration)
/// report failures through `Status`/`StatusOr`; internal invariant
/// violations use `TDP_CHECK` instead.
class Status {
 public:
  /// Constructs an OK status.
  Status() = default;

  Status(StatusCode code, std::string message)
      : code_(code), message_(std::move(message)) {}

  static Status OK() { return Status(); }
  static Status InvalidArgument(std::string msg) {
    return Status(StatusCode::kInvalidArgument, std::move(msg));
  }
  static Status NotFound(std::string msg) {
    return Status(StatusCode::kNotFound, std::move(msg));
  }
  static Status AlreadyExists(std::string msg) {
    return Status(StatusCode::kAlreadyExists, std::move(msg));
  }
  static Status OutOfRange(std::string msg) {
    return Status(StatusCode::kOutOfRange, std::move(msg));
  }
  static Status Unimplemented(std::string msg) {
    return Status(StatusCode::kUnimplemented, std::move(msg));
  }
  static Status Internal(std::string msg) {
    return Status(StatusCode::kInternal, std::move(msg));
  }
  static Status TypeError(std::string msg) {
    return Status(StatusCode::kTypeError, std::move(msg));
  }
  static Status ParseError(std::string msg) {
    return Status(StatusCode::kParseError, std::move(msg));
  }
  static Status BindError(std::string msg) {
    return Status(StatusCode::kBindError, std::move(msg));
  }
  static Status ExecutionError(std::string msg) {
    return Status(StatusCode::kExecutionError, std::move(msg));
  }
  static Status Cancelled(std::string msg) {
    return Status(StatusCode::kCancelled, std::move(msg));
  }
  static Status ResourceExhausted(std::string msg) {
    return Status(StatusCode::kResourceExhausted, std::move(msg));
  }

  bool ok() const { return code_ == StatusCode::kOk; }
  StatusCode code() const { return code_; }
  const std::string& message() const { return message_; }

  /// Returns "OK" or "<CodeName>: <message>".
  std::string ToString() const;

 private:
  StatusCode code_ = StatusCode::kOk;
  std::string message_;
};

/// Propagates a non-OK `Status` from the evaluated expression.
#define TDP_RETURN_NOT_OK(expr)              \
  do {                                       \
    ::tdp::Status _tdp_status = (expr);      \
    if (!_tdp_status.ok()) return _tdp_status; \
  } while (false)

}  // namespace tdp

#endif  // TDP_COMMON_STATUS_H_
