#include "src/common/thread_pool.h"

#include <algorithm>
#include <atomic>
#include <cstdlib>
#include <exception>
#include <limits>
#include <memory>
#include <utility>

#include "src/common/logging.h"

namespace tdp {
namespace {

// Set while a thread is executing a ParallelFor shard; nested calls from
// inside a shard run inline instead of re-entering the pool.
thread_local bool in_parallel_region = false;

int EnvNumThreads() {
  const char* env = std::getenv("TDP_NUM_THREADS");
  if (env != nullptr && *env != '\0') {
    char* end = nullptr;
    const long v = std::strtol(env, &end, 10);
    if (end != nullptr && *end == '\0' && v >= 1 && v <= 1024) {
      return static_cast<int>(v);
    }
    TDP_LOG(Warning) << "ignoring invalid TDP_NUM_THREADS='" << env << "'";
  }
  const unsigned hw = std::thread::hardware_concurrency();
  return hw == 0 ? 1 : static_cast<int>(hw);
}

std::unique_ptr<ThreadPool>& GlobalSlot() {
  static std::unique_ptr<ThreadPool>* slot = new std::unique_ptr<ThreadPool>;
  return *slot;
}

std::mutex& GlobalMutex() {
  static std::mutex* mu = new std::mutex;
  return *mu;
}

// Lock-free fast path for Global(): nested kernel calls (e.g. BMM invoking
// the per-matrix matmul per batch item) would otherwise contend on
// GlobalMutex thousands of times per operator.
std::atomic<ThreadPool*> g_pool_cache{nullptr};

}  // namespace

ThreadPool::ThreadPool(int num_threads)
    : num_threads_(std::max(num_threads, 1)) {
  workers_.reserve(static_cast<size_t>(num_threads_ - 1));
  for (int i = 0; i < num_threads_ - 1; ++i) {
    workers_.emplace_back([this] { WorkerLoop(); });
  }
}

ThreadPool::~ThreadPool() {
  {
    std::lock_guard<std::mutex> lock(mu_);
    stop_ = true;
  }
  cv_.notify_all();
  for (std::thread& w : workers_) w.join();
}

void ThreadPool::WorkerLoop() {
  for (;;) {
    std::function<void()> task;
    {
      std::unique_lock<std::mutex> lock(mu_);
      cv_.wait(lock, [this] { return stop_ || !queue_.empty(); });
      if (stop_ && queue_.empty()) return;
      task = std::move(queue_.front().fn);
      queue_.pop_front();
    }
    task();
  }
}

void ThreadPool::ParallelFor(int64_t begin, int64_t end, int64_t grain,
                             const std::function<void(int64_t, int64_t)>& fn) {
  const int64_t n = end - begin;
  if (n <= 0) return;
  grain = std::max<int64_t>(grain, 1);

  const int64_t max_shards = (n + grain - 1) / grain;
  const int64_t want_shards =
      std::min<int64_t>({max_shards, num_threads_,
                         in_parallel_region ? int64_t{1}
                                            : std::numeric_limits<int64_t>::max()});
  if (want_shards <= 1) {
    fn(begin, end);
    return;
  }

  const int64_t chunk = (n + want_shards - 1) / want_shards;
  // Recompute from the rounded-up chunk so every shard is non-empty (with
  // want_shards=7 over 8 items, chunk=2 yields only 4 real shards).
  const int64_t shards = (n + chunk - 1) / chunk;
  struct SharedState {
    std::mutex mu;
    std::condition_variable done_cv;
    int64_t pending;
    std::exception_ptr first_error;
  };
  auto state = std::make_shared<SharedState>();
  state->pending = shards - 1;

  // RAII so the thread-local unwinds even when fn throws; a leaked flag
  // would silently serialize every later ParallelFor on this thread.
  struct RegionGuard {
    bool saved = in_parallel_region;
    RegionGuard() { in_parallel_region = true; }
    ~RegionGuard() { in_parallel_region = saved; }
  };
  auto run_shard = [&fn](int64_t b, int64_t e) {
    RegionGuard guard;
    fn(b, e);
  };

  {
    std::lock_guard<std::mutex> lock(mu_);
    for (int64_t s = 1; s < shards; ++s) {
      const int64_t b = begin + s * chunk;
      const int64_t e = std::min(end, b + chunk);
      queue_.push_back(Task{state.get(), [state, run_shard, b, e] {
        try {
          run_shard(b, e);
        } catch (...) {
          std::lock_guard<std::mutex> slock(state->mu);
          if (!state->first_error) state->first_error = std::current_exception();
        }
        std::lock_guard<std::mutex> slock(state->mu);
        if (--state->pending == 0) state->done_cv.notify_one();
      }});
    }
  }
  cv_.notify_all();

  // The caller runs the first shard, then drains this call's remaining
  // queued shards while waiting — help-first scheduling that also makes
  // ParallelFor correct when workers are saturated. Only own shards are
  // taken: helping a foreign call would couple this call's latency to
  // arbitrarily expensive unrelated work.
  std::exception_ptr caller_error;
  try {
    run_shard(begin, std::min(end, begin + chunk));
  } catch (...) {
    caller_error = std::current_exception();
  }
  for (;;) {
    std::function<void()> task;
    {
      std::unique_lock<std::mutex> lock(mu_);
      for (auto it = queue_.begin(); it != queue_.end(); ++it) {
        if (it->tag == state.get()) {
          task = std::move(it->fn);
          queue_.erase(it);
          break;
        }
      }
    }
    if (!task) break;
    task();
  }
  {
    std::unique_lock<std::mutex> lock(state->mu);
    state->done_cv.wait(lock, [&state] { return state->pending == 0; });
    if (caller_error) std::rethrow_exception(caller_error);
    if (state->first_error) std::rethrow_exception(state->first_error);
  }
}

ThreadPool& ThreadPool::Global() {
  ThreadPool* cached = g_pool_cache.load(std::memory_order_acquire);
  if (cached != nullptr) return *cached;
  std::lock_guard<std::mutex> lock(GlobalMutex());
  std::unique_ptr<ThreadPool>& pool = GlobalSlot();
  if (!pool) pool = std::make_unique<ThreadPool>(EnvNumThreads());
  g_pool_cache.store(pool.get(), std::memory_order_release);
  return *pool;
}

void ThreadPool::SetGlobalNumThreads(int num_threads) {
  std::lock_guard<std::mutex> lock(GlobalMutex());
  // Clear the cache before the old pool dies; concurrent ParallelFor during
  // a resize is documented as unsupported, this just keeps the window tidy.
  g_pool_cache.store(nullptr, std::memory_order_release);
  GlobalSlot() = std::make_unique<ThreadPool>(num_threads);
  g_pool_cache.store(GlobalSlot().get(), std::memory_order_release);
}

ScopedNumThreads::ScopedNumThreads(int num_threads)
    : saved_(ThreadPool::Global().num_threads()) {
  ThreadPool::SetGlobalNumThreads(num_threads);
}

ScopedNumThreads::~ScopedNumThreads() {
  ThreadPool::SetGlobalNumThreads(saved_);
}

void ParallelFor(int64_t begin, int64_t end, int64_t grain,
                 const std::function<void(int64_t, int64_t)>& fn) {
  // Nested calls run inline anyway; skip the Global() lookup entirely so
  // per-item nested kernels (BMM's inner matmuls) stay contention-free.
  if (in_parallel_region) {
    if (end > begin) fn(begin, end);
    return;
  }
  ThreadPool::Global().ParallelFor(begin, end, grain, fn);
}

}  // namespace tdp
