#ifndef TDP_IO_CSV_H_
#define TDP_IO_CSV_H_

#include <memory>
#include <string>

#include "src/common/statusor.h"
#include "src/storage/table.h"

namespace tdp {
namespace io {

/// CSV ingestion/export — the interchange-format counterpart of the
/// paper's `register_df` / Parquet / Arrow registration APIs (§2).
/// Column types are inferred per column from the data: int64 if every
/// value parses as an integer, float64 if every value parses as a number,
/// bool for true/false columns, otherwise an order-preserving dictionary
/// string column.

struct CsvOptions {
  char delimiter = ',';
  /// First row holds column names; otherwise columns are named c0, c1...
  bool has_header = true;
};

/// Parses CSV text into a table named `table_name`.
StatusOr<std::shared_ptr<Table>> ReadCsvString(const std::string& text,
                                               const std::string& table_name,
                                               const CsvOptions& options = {});

/// Reads a CSV file from disk.
StatusOr<std::shared_ptr<Table>> ReadCsvFile(const std::string& path,
                                             const std::string& table_name,
                                             const CsvOptions& options = {});

/// Renders a table as CSV (header + rows). Tensor columns are rejected
/// (no lossless scalar representation); PE columns export hard-decoded
/// values.
StatusOr<std::string> WriteCsvString(const Table& table,
                                     const CsvOptions& options = {});

/// Writes a table to a CSV file.
Status WriteCsvFile(const Table& table, const std::string& path,
                    const CsvOptions& options = {});

}  // namespace io
}  // namespace tdp

#endif  // TDP_IO_CSV_H_
