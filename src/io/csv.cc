#include "src/io/csv.h"

#include <cctype>
#include <charconv>
#include <fstream>
#include <sstream>

#include "src/common/string_util.h"

namespace tdp {
namespace io {
namespace {

// Splits one CSV line honoring double-quoted fields ("" escapes a quote).
std::vector<std::string> SplitCsvLine(const std::string& line,
                                      char delimiter) {
  std::vector<std::string> fields;
  std::string current;
  bool in_quotes = false;
  for (size_t i = 0; i < line.size(); ++i) {
    const char c = line[i];
    if (in_quotes) {
      if (c == '"') {
        if (i + 1 < line.size() && line[i + 1] == '"') {
          current += '"';
          ++i;
        } else {
          in_quotes = false;
        }
      } else {
        current += c;
      }
    } else if (c == '"') {
      in_quotes = true;
    } else if (c == delimiter) {
      fields.push_back(std::move(current));
      current.clear();
    } else if (c != '\r') {
      current += c;
    }
  }
  fields.push_back(std::move(current));
  return fields;
}

bool ParseInt(const std::string& s, int64_t& out) {
  const std::string_view sv = StripWhitespace(s);
  if (sv.empty()) return false;
  const auto [ptr, ec] =
      std::from_chars(sv.data(), sv.data() + sv.size(), out);
  return ec == std::errc() && ptr == sv.data() + sv.size();
}

bool ParseDouble(const std::string& s, double& out) {
  const std::string_view sv = StripWhitespace(s);
  if (sv.empty()) return false;
  // std::from_chars<double> is not universally available; use strtod.
  std::string buf(sv);
  char* end = nullptr;
  out = std::strtod(buf.c_str(), &end);
  return end == buf.c_str() + buf.size();
}

bool ParseBool(const std::string& s, bool& out) {
  if (EqualsIgnoreCase(StripWhitespace(s), "true")) {
    out = true;
    return true;
  }
  if (EqualsIgnoreCase(StripWhitespace(s), "false")) {
    out = false;
    return true;
  }
  return false;
}

bool NeedsQuoting(const std::string& s, char delimiter) {
  return s.find(delimiter) != std::string::npos ||
         s.find('"') != std::string::npos ||
         s.find('\n') != std::string::npos;
}

std::string QuoteField(const std::string& s) {
  std::string out = "\"";
  for (char c : s) {
    if (c == '"') out += '"';
    out += c;
  }
  out += '"';
  return out;
}

}  // namespace

StatusOr<std::shared_ptr<Table>> ReadCsvString(const std::string& text,
                                               const std::string& table_name,
                                               const CsvOptions& options) {
  std::vector<std::vector<std::string>> rows;
  std::istringstream stream(text);
  std::string line;
  while (std::getline(stream, line)) {
    if (line.empty()) continue;
    rows.push_back(SplitCsvLine(line, options.delimiter));
  }
  if (rows.empty()) {
    return Status::InvalidArgument("empty CSV input");
  }

  std::vector<std::string> names;
  size_t first_data_row = 0;
  if (options.has_header) {
    for (const std::string& h : rows[0]) {
      names.push_back(std::string(StripWhitespace(h)));
    }
    first_data_row = 1;
  } else {
    for (size_t c = 0; c < rows[0].size(); ++c) {
      names.push_back("c" + std::to_string(c));
    }
  }
  const size_t num_cols = names.size();
  const size_t num_rows = rows.size() - first_data_row;
  for (size_t r = first_data_row; r < rows.size(); ++r) {
    if (rows[r].size() != num_cols) {
      return Status::InvalidArgument(
          "CSV row " + std::to_string(r + 1) + " has " +
          std::to_string(rows[r].size()) + " fields, expected " +
          std::to_string(num_cols));
    }
  }

  // Per-column type inference: int ⊂ float; any failure -> string.
  TableBuilder builder(table_name);
  for (size_t c = 0; c < num_cols; ++c) {
    bool all_int = num_rows > 0, all_float = num_rows > 0,
         all_bool = num_rows > 0;
    for (size_t r = first_data_row; r < rows.size(); ++r) {
      int64_t iv;
      double dv;
      bool bv;
      if (!ParseInt(rows[r][c], iv)) all_int = false;
      if (!ParseDouble(rows[r][c], dv)) all_float = false;
      if (!ParseBool(rows[r][c], bv)) all_bool = false;
      if (!all_int && !all_float && !all_bool) break;
    }
    if (all_int) {
      std::vector<int64_t> values;
      for (size_t r = first_data_row; r < rows.size(); ++r) {
        int64_t v = 0;
        ParseInt(rows[r][c], v);
        values.push_back(v);
      }
      builder.AddInt64(names[c], values);
    } else if (all_float) {
      std::vector<double> values;
      for (size_t r = first_data_row; r < rows.size(); ++r) {
        double v = 0;
        ParseDouble(rows[r][c], v);
        values.push_back(v);
      }
      builder.AddFloat64(names[c], values);
    } else if (all_bool) {
      std::vector<bool> values;
      for (size_t r = first_data_row; r < rows.size(); ++r) {
        bool v = false;
        ParseBool(rows[r][c], v);
        values.push_back(v);
      }
      builder.AddBool(names[c], values);
    } else {
      std::vector<std::string> values;
      for (size_t r = first_data_row; r < rows.size(); ++r) {
        values.push_back(rows[r][c]);
      }
      builder.AddStrings(names[c], values);
    }
  }
  return builder.Build();
}

StatusOr<std::shared_ptr<Table>> ReadCsvFile(const std::string& path,
                                             const std::string& table_name,
                                             const CsvOptions& options) {
  std::ifstream file(path);
  if (!file) {
    return Status::NotFound("cannot open CSV file: " + path);
  }
  std::ostringstream buffer;
  buffer << file.rdbuf();
  return ReadCsvString(buffer.str(), table_name, options);
}

StatusOr<std::string> WriteCsvString(const Table& table,
                                     const CsvOptions& options) {
  std::ostringstream out;
  std::vector<std::vector<std::string>> decoded(
      static_cast<size_t>(table.num_columns()));
  for (int64_t c = 0; c < table.num_columns(); ++c) {
    const Column& col = table.column(c);
    if (col.IsTensorColumn()) {
      return Status::InvalidArgument(
          "tensor column '" + table.column_names()[static_cast<size_t>(c)] +
          "' has no CSV representation");
    }
    if (col.encoding() == Encoding::kDictionary) {
      decoded[static_cast<size_t>(c)] = col.DecodeStrings();
    }
  }
  if (options.has_header) {
    for (int64_t c = 0; c < table.num_columns(); ++c) {
      if (c > 0) out << options.delimiter;
      const std::string& name =
          table.column_names()[static_cast<size_t>(c)];
      out << (NeedsQuoting(name, options.delimiter) ? QuoteField(name)
                                                    : name);
    }
    out << '\n';
  }
  for (int64_t r = 0; r < table.num_rows(); ++r) {
    for (int64_t c = 0; c < table.num_columns(); ++c) {
      if (c > 0) out << options.delimiter;
      const Column& col = table.column(c);
      if (col.encoding() == Encoding::kDictionary) {
        const std::string& v =
            decoded[static_cast<size_t>(c)][static_cast<size_t>(r)];
        out << (NeedsQuoting(v, options.delimiter) ? QuoteField(v) : v);
      } else {
        const double v = col.DecodeValues().At({r});
        if (col.data().dtype() == DType::kInt64 ||
            col.data().dtype() == DType::kInt32) {
          out << static_cast<int64_t>(v);
        } else if (col.data().dtype() == DType::kBool) {
          out << (v != 0 ? "true" : "false");
        } else {
          out << v;
        }
      }
    }
    out << '\n';
  }
  return out.str();
}

Status WriteCsvFile(const Table& table, const std::string& path,
                    const CsvOptions& options) {
  TDP_ASSIGN_OR_RETURN(std::string text, WriteCsvString(table, options));
  std::ofstream file(path);
  if (!file) {
    return Status::InvalidArgument("cannot open file for writing: " + path);
  }
  file << text;
  return file.good() ? Status::OK()
                     : Status::Internal("write failed: " + path);
}

}  // namespace io
}  // namespace tdp
