#include "src/server/engine.h"

#include <algorithm>
#include <chrono>

#include "src/plan/footprint.h"

namespace tdp {
namespace server {

Engine::Engine(EngineOptions options) : options_(options) {}

Session& Engine::tenant(const std::string& tenant_id) {
  std::lock_guard<std::mutex> lock(tenants_mu_);
  auto& slot = tenants_[tenant_id];
  if (slot == nullptr) slot = std::make_unique<Session>();
  return *slot;
}

void Engine::PromoteLocked() {
  bool promoted = false;
  for (auto it = queue_.begin();
       it != queue_.end() && running_ < options_.max_concurrent;) {
    Waiter* w = *it;
    if (tenant_running_[*w->tenant] < options_.per_tenant_max_concurrent) {
      w->admitted = true;
      ++running_;
      ++tenant_running_[*w->tenant];
      it = queue_.erase(it);
      promoted = true;
    } else {
      // This tenant is at its cap: later requests of OTHER tenants may
      // still be admitted (per-tenant isolation beats strict FIFO).
      ++it;
    }
  }
  if (promoted) cv_.notify_all();
}

Status Engine::Admit(const std::string& tenant_id,
                     const exec::CancellationToken* cancel) {
  std::unique_lock<std::mutex> lock(mu_);
  if (static_cast<int64_t>(queue_.size()) >= options_.max_queue) {
    ++stats_.shed;
    return Status::ResourceExhausted(
        "admission queue full (" + std::to_string(options_.max_queue) +
        " waiting): load shed — retry with backoff");
  }
  Waiter w;
  w.tenant = &tenant_id;
  queue_.push_back(&w);
  stats_.peak_queue_depth =
      std::max(stats_.peak_queue_depth,
               static_cast<uint64_t>(queue_.size()));
  PromoteLocked();
  // Timed waits: a caller-shared CancellationToken can flip without
  // notifying this condition variable (same pattern as ResultCursor
  // backpressure), so a queued request re-checks it every few ms.
  while (!w.admitted) {
    if (cancel != nullptr && cancel->cancelled()) {
      queue_.remove(&w);
      ++stats_.cancelled_while_queued;
      return Status::Cancelled("request cancelled while queued");
    }
    cv_.wait_for(lock, std::chrono::milliseconds(10));
  }
  ++stats_.admitted;
  return Status::OK();
}

void Engine::Release(const std::string& tenant_id) {
  std::lock_guard<std::mutex> lock(mu_);
  --running_;
  --tenant_running_[tenant_id];
  PromoteLocked();
}

StatusOr<std::shared_ptr<Table>> Engine::Sql(const Request& req) {
  Session& session = tenant(req.tenant);

  // Compile first (through the tenant's plan cache): a malformed statement
  // must fail fast without holding — or even waiting for — a slot.
  TDP_ASSIGN_OR_RETURN(std::shared_ptr<exec::CompiledQuery> query,
                       session.Prepare(req.sql, req.query));

  // Footprint pre-rejection: refuse queries that could not possibly run
  // inside the admission ceiling while the information is cheap. The
  // estimate is pessimistic by design (see plan/footprint.h) — the real
  // enforcement is the per-query MemoryBudget below.
  if (options_.max_estimated_footprint_bytes > 0) {
    const plan::FootprintEstimate est = plan::EstimatePlanFootprint(
        query->plan(), *session.catalog().Snapshot());
    if (est.peak_breaker_bytes > options_.max_estimated_footprint_bytes) {
      std::lock_guard<std::mutex> lock(mu_);
      ++stats_.rejected_footprint;
      return Status::ResourceExhausted(
          "estimated breaker footprint " +
          std::to_string(est.peak_breaker_bytes) + " bytes exceeds the " +
          std::to_string(options_.max_estimated_footprint_bytes) +
          "-byte admission ceiling");
    }
  }

  exec::RunOptions run = req.run;
  if (run.memory_budget_bytes == 0) {
    run.memory_budget_bytes = options_.default_memory_budget_bytes;
  }

  TDP_RETURN_NOT_OK(Admit(req.tenant, run.cancel.get()));
  StatusOr<std::shared_ptr<Table>> result = query->Run(run);
  Release(req.tenant);
  {
    std::lock_guard<std::mutex> lock(mu_);
    if (result.ok()) {
      ++stats_.completed;
    } else {
      ++stats_.failed;
    }
  }
  return result;
}

EngineStats Engine::stats() const {
  std::lock_guard<std::mutex> lock(mu_);
  EngineStats snapshot = stats_;
  snapshot.running = running_;
  snapshot.queued = static_cast<int64_t>(queue_.size());
  return snapshot;
}

}  // namespace server
}  // namespace tdp
