#ifndef TDP_SERVER_ENGINE_H_
#define TDP_SERVER_ENGINE_H_

#include <condition_variable>
#include <cstdint>
#include <list>
#include <memory>
#include <mutex>
#include <string>
#include <unordered_map>

#include "src/common/statusor.h"
#include "src/exec/run_options.h"
#include "src/runtime/session.h"

namespace tdp {
namespace server {

/// Static sizing of the serving front end. The defaults suit tests; a real
/// deployment sizes `max_concurrent` to the machine and `max_queue` to its
/// latency SLO (a deep queue converts overload into latency, a shallow one
/// into shed requests).
struct EngineOptions {
  /// Requests allowed to WAIT for an execution slot. A request arriving
  /// with the queue full is shed immediately with
  /// `StatusCode::kResourceExhausted` — overload degrades into fast,
  /// explicit rejections instead of unbounded queueing.
  int64_t max_queue = 64;
  /// Queries executing simultaneously across all tenants. Admission is
  /// FIFO among eligible waiters.
  int64_t max_concurrent = 4;
  /// Per-tenant cap on simultaneously executing queries: one hot tenant
  /// saturating the engine cannot occupy every slot, so other tenants'
  /// requests keep flowing (they are admitted PAST queued requests of the
  /// capped tenant — FIFO order is preserved within eligibility, not
  /// across it).
  int64_t per_tenant_max_concurrent = 2;
  /// Default `RunOptions::memory_budget_bytes` applied to requests that
  /// did not set one (0 leaves them unlimited). The per-query breaker
  /// budget is the engine's real memory backstop: admission caps how many
  /// queries run, the budget caps what each one may hold.
  int64_t default_memory_budget_bytes = 0;
  /// When > 0, a request whose plan's estimated peak breaker scratch
  /// (`plan::EstimatePlanFootprint`) exceeds this is rejected with
  /// `kResourceExhausted` BEFORE queueing — a query that would only spill
  /// its whole runtime away can be refused while the information is cheap.
  int64_t max_estimated_footprint_bytes = 0;
};

/// Cumulative serving counters plus point-in-time gauges (`stats()`).
struct EngineStats {
  uint64_t admitted = 0;   // requests that received an execution slot
  uint64_t shed = 0;       // rejected: queue full
  uint64_t rejected_footprint = 0;  // rejected: estimated footprint too big
  uint64_t cancelled_while_queued = 0;
  uint64_t completed = 0;  // admitted runs that returned OK
  uint64_t failed = 0;     // admitted runs that returned an error
  uint64_t peak_queue_depth = 0;
  int64_t running = 0;     // gauge
  int64_t queued = 0;      // gauge
};

/// Embedded multi-tenant serving front end over the shared process
/// runtime. Each tenant gets its own `Session` — its own catalog and its
/// own plan-cache namespace, so tenants can never see each other's tables
/// and one tenant's ad-hoc statements cannot evict another's hot plans —
/// while all execution shares the single process-wide `ThreadPool`.
/// What the engine adds over bare Sessions is the resource envelope:
///
///   request -> [footprint pre-reject] -> bounded FIFO admission queue
///           -> (global + per-tenant concurrency caps) -> Session::Sql
///              with a per-query MemoryBudget -> release + promote next
///
/// Thread safety: all public methods may be called from any number of
/// threads concurrently. `Sql` blocks while its request waits for a slot
/// (cancellable through `RunOptions::cancel`).
class Engine {
 public:
  explicit Engine(EngineOptions options = {});

  Engine(const Engine&) = delete;
  Engine& operator=(const Engine&) = delete;

  /// One serving request. `run.memory_budget_bytes == 0` inherits the
  /// engine's default budget; `run.cancel` also cancels waiting in the
  /// admission queue (status `kCancelled`, same as a cancelled run).
  struct Request {
    std::string tenant;
    std::string sql;
    QueryOptions query;
    exec::RunOptions run;
  };

  /// Compile (through the tenant's plan cache) + admit + run + release.
  /// Compilation failures and footprint rejections return without ever
  /// occupying a queue slot.
  StatusOr<std::shared_ptr<Table>> Sql(const Request& req);

  /// The tenant's private session (created on first use): the registration
  /// surface — tables, tensors, UDFs, vector indexes — for that tenant.
  Session& tenant(const std::string& tenant_id);

  EngineStats stats() const;

  const EngineOptions& options() const { return options_; }

 private:
  struct Waiter {
    const std::string* tenant = nullptr;
    bool admitted = false;
  };

  /// Scans the FIFO queue front-to-back admitting every waiter whose
  /// tenant has spare capacity until the global cap is reached. Called
  /// with `mu_` held whenever capacity may have appeared.
  void PromoteLocked();

  Status Admit(const std::string& tenant_id,
               const exec::CancellationToken* cancel);
  void Release(const std::string& tenant_id);

  const EngineOptions options_;

  mutable std::mutex tenants_mu_;
  std::unordered_map<std::string, std::unique_ptr<Session>> tenants_;

  mutable std::mutex mu_;
  std::condition_variable cv_;
  std::list<Waiter*> queue_;
  int64_t running_ = 0;
  std::unordered_map<std::string, int64_t> tenant_running_;
  EngineStats stats_;
};

}  // namespace server
}  // namespace tdp

#endif  // TDP_SERVER_ENGINE_H_
