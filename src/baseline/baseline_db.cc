#include "src/baseline/baseline_db.h"

#include <algorithm>
#include <cmath>
#include <set>

#include "src/common/logging.h"
#include "src/common/string_util.h"
#include "src/sql/parser.h"

namespace tdp {
namespace baseline {

using sql::BinaryExpr;
using sql::BinaryOp;
using sql::CaseExpr;
using sql::ColumnRefExpr;
using sql::Expr;
using sql::ExprKind;
using sql::FunctionCallExpr;
using sql::LiteralExpr;
using sql::LiteralKind;
using sql::SelectStatement;
using sql::TableRef;
using sql::TableRefKind;
using sql::UnaryExpr;
using sql::UnaryOp;

namespace {

double AsDouble(const Value& v) {
  if (std::holds_alternative<int64_t>(v)) {
    return static_cast<double>(std::get<int64_t>(v));
  }
  if (std::holds_alternative<double>(v)) return std::get<double>(v);
  if (std::holds_alternative<bool>(v)) return std::get<bool>(v) ? 1.0 : 0.0;
  TDP_LOG(Fatal) << "string used as number";
  return 0;
}

bool IsNumeric(const Value& v) {
  return std::holds_alternative<int64_t>(v) ||
         std::holds_alternative<double>(v) ||
         std::holds_alternative<bool>(v);
}

}  // namespace

bool ValueEquals(const Value& a, const Value& b) {
  if (std::holds_alternative<std::string>(a) ||
      std::holds_alternative<std::string>(b)) {
    return std::holds_alternative<std::string>(a) &&
           std::holds_alternative<std::string>(b) &&
           std::get<std::string>(a) == std::get<std::string>(b);
  }
  return AsDouble(a) == AsDouble(b);
}

bool ValueLess(const Value& a, const Value& b) {
  if (std::holds_alternative<std::string>(a) &&
      std::holds_alternative<std::string>(b)) {
    return std::get<std::string>(a) < std::get<std::string>(b);
  }
  return AsDouble(a) < AsDouble(b);
}

std::string ValueToString(const Value& v) {
  if (std::holds_alternative<int64_t>(v)) {
    return std::to_string(std::get<int64_t>(v));
  }
  if (std::holds_alternative<double>(v)) {
    return std::to_string(std::get<double>(v));
  }
  if (std::holds_alternative<bool>(v)) {
    return std::get<bool>(v) ? "true" : "false";
  }
  return std::get<std::string>(v);
}

namespace {

// Row scope during evaluation: column name -> value index, with optional
// table qualifiers.
struct RowScope {
  std::vector<std::string> names;
  std::vector<std::string> qualifiers;

  StatusOr<size_t> Find(const std::string& qualifier,
                        const std::string& name) const {
    size_t found = names.size();
    for (size_t i = 0; i < names.size(); ++i) {
      if (!EqualsIgnoreCase(names[i], name)) continue;
      if (!qualifier.empty() && !EqualsIgnoreCase(qualifiers[i], qualifier)) {
        continue;
      }
      if (found != names.size()) {
        return Status::BindError("ambiguous column: " + name);
      }
      found = i;
    }
    if (found == names.size()) {
      return Status::BindError("column not found: " + name);
    }
    return found;
  }
};

class Executor {
 public:
  explicit Executor(const BaselineDb& db) : db_(db) {}

  StatusOr<BaselineTable> Execute(const SelectStatement& stmt);

 private:
  struct Relation {
    RowScope scope;
    std::vector<std::vector<Value>> rows;
  };

  StatusOr<Relation> ExecuteFrom(const TableRef& ref);

  StatusOr<Value> Eval(const Expr& e, const RowScope& scope,
                       const std::vector<Value>& row) const;

  // Collects aggregate calls in `e` into `aggs` (deduplicated by text).
  static void CollectAggregates(const Expr& e,
                                std::vector<const FunctionCallExpr*>& aggs);

  // Evaluates a post-aggregation expression where aggregate results and
  // group keys are pre-bound in `scope`/`row`.
  StatusOr<Value> EvalPostAgg(const Expr& e, const RowScope& group_scope,
                              const std::vector<Value>& group_row) const;

  const BaselineDb& db_;
};

bool IsAggregateCall(const Expr& e) {
  if (e.kind != ExprKind::kFunctionCall) return false;
  const auto& f = static_cast<const FunctionCallExpr&>(e);
  return f.function_name == "count" || f.function_name == "sum" ||
         f.function_name == "avg" || f.function_name == "min" ||
         f.function_name == "max";
}

bool HasAggregate(const Expr& e) {
  if (IsAggregateCall(e)) return true;
  switch (e.kind) {
    case ExprKind::kBinary: {
      const auto& b = static_cast<const BinaryExpr&>(e);
      return HasAggregate(*b.left) || HasAggregate(*b.right);
    }
    case ExprKind::kUnary:
      return HasAggregate(*static_cast<const UnaryExpr&>(e).operand);
    case ExprKind::kCase: {
      const auto& c = static_cast<const CaseExpr&>(e);
      for (const auto& [w, t] : c.branches) {
        if (HasAggregate(*w) || HasAggregate(*t)) return true;
      }
      return c.else_expr && HasAggregate(*c.else_expr);
    }
    default:
      return false;
  }
}

void Executor::CollectAggregates(const Expr& e,
                                 std::vector<const FunctionCallExpr*>& aggs) {
  if (IsAggregateCall(e)) {
    const auto& f = static_cast<const FunctionCallExpr&>(e);
    for (const auto* existing : aggs) {
      if (EqualsIgnoreCase(existing->ToString(), f.ToString())) return;
    }
    aggs.push_back(&f);
    return;
  }
  switch (e.kind) {
    case ExprKind::kBinary: {
      const auto& b = static_cast<const BinaryExpr&>(e);
      CollectAggregates(*b.left, aggs);
      CollectAggregates(*b.right, aggs);
      return;
    }
    case ExprKind::kUnary:
      CollectAggregates(*static_cast<const UnaryExpr&>(e).operand, aggs);
      return;
    case ExprKind::kCase: {
      const auto& c = static_cast<const CaseExpr&>(e);
      for (const auto& [w, t] : c.branches) {
        CollectAggregates(*w, aggs);
        CollectAggregates(*t, aggs);
      }
      if (c.else_expr) CollectAggregates(*c.else_expr, aggs);
      return;
    }
    default:
      return;
  }
}

StatusOr<Value> Executor::Eval(const Expr& e, const RowScope& scope,
                               const std::vector<Value>& row) const {
  switch (e.kind) {
    case ExprKind::kColumnRef: {
      const auto& c = static_cast<const ColumnRefExpr&>(e);
      TDP_ASSIGN_OR_RETURN(size_t idx, scope.Find(c.table_name, c.column_name));
      return row[idx];
    }
    case ExprKind::kLiteral: {
      const auto& lit = static_cast<const LiteralExpr&>(e);
      switch (lit.literal_kind) {
        case LiteralKind::kInteger:
          return Value(static_cast<int64_t>(lit.number_value));
        case LiteralKind::kFloat:
          return Value(lit.number_value);
        case LiteralKind::kString:
          return Value(lit.string_value);
        case LiteralKind::kBoolean:
          return Value(lit.bool_value);
        case LiteralKind::kNull:
          return Status::Unimplemented("NULL literals");
      }
      return Status::Internal("bad literal");
    }
    case ExprKind::kBinary: {
      const auto& b = static_cast<const BinaryExpr&>(e);
      TDP_ASSIGN_OR_RETURN(Value lhs, Eval(*b.left, scope, row));
      TDP_ASSIGN_OR_RETURN(Value rhs, Eval(*b.right, scope, row));
      switch (b.op) {
        case BinaryOp::kAnd:
          return Value(std::get<bool>(lhs) && std::get<bool>(rhs));
        case BinaryOp::kOr:
          return Value(std::get<bool>(lhs) || std::get<bool>(rhs));
        case BinaryOp::kEq:
          return Value(ValueEquals(lhs, rhs));
        case BinaryOp::kNe:
          return Value(!ValueEquals(lhs, rhs));
        case BinaryOp::kLt:
          return Value(ValueLess(lhs, rhs));
        case BinaryOp::kGe:
          return Value(!ValueLess(lhs, rhs));
        case BinaryOp::kGt:
          return Value(ValueLess(rhs, lhs));
        case BinaryOp::kLe:
          return Value(!ValueLess(rhs, lhs));
        default:
          break;
      }
      if (!IsNumeric(lhs) || !IsNumeric(rhs)) {
        return Status::TypeError("arithmetic on strings");
      }
      const bool both_int = std::holds_alternative<int64_t>(lhs) &&
                            std::holds_alternative<int64_t>(rhs);
      const double x = AsDouble(lhs), y = AsDouble(rhs);
      switch (b.op) {
        case BinaryOp::kAdd:
          return both_int ? Value(static_cast<int64_t>(x + y)) : Value(x + y);
        case BinaryOp::kSub:
          return both_int ? Value(static_cast<int64_t>(x - y)) : Value(x - y);
        case BinaryOp::kMul:
          return both_int ? Value(static_cast<int64_t>(x * y)) : Value(x * y);
        case BinaryOp::kDiv:
          if (y == 0) return Status::ExecutionError("division by zero");
          return Value(x / y);
        case BinaryOp::kMod: {
          const int64_t yi = static_cast<int64_t>(y);
          if (yi == 0) return Status::ExecutionError("modulo by zero");
          return Value(static_cast<int64_t>(x) % yi);
        }
        default:
          return Status::Internal("bad binary op");
      }
    }
    case ExprKind::kUnary: {
      const auto& u = static_cast<const UnaryExpr&>(e);
      TDP_ASSIGN_OR_RETURN(Value v, Eval(*u.operand, scope, row));
      if (u.op == UnaryOp::kNot) return Value(!std::get<bool>(v));
      if (std::holds_alternative<int64_t>(v)) {
        return Value(-std::get<int64_t>(v));
      }
      return Value(-AsDouble(v));
    }
    case ExprKind::kCase: {
      const auto& c = static_cast<const CaseExpr&>(e);
      for (const auto& [when, then] : c.branches) {
        TDP_ASSIGN_OR_RETURN(Value cond, Eval(*when, scope, row));
        if (std::get<bool>(cond)) return Eval(*then, scope, row);
      }
      if (c.else_expr) return Eval(*c.else_expr, scope, row);
      return Value(static_cast<int64_t>(0));
    }
    case ExprKind::kFunctionCall:
      return Status::Unimplemented(
          "BaselineDB has no scalar functions (by design)");
    case ExprKind::kStar:
      return Status::BindError("'*' outside SELECT list");
    case ExprKind::kParameter:
      return Status::Unimplemented(
          "BaselineDB does not support prepared-statement parameters");
  }
  return Status::Internal("bad expr");
}

StatusOr<Executor::Relation> Executor::ExecuteFrom(const TableRef& ref) {
  switch (ref.kind) {
    case TableRefKind::kBaseTable: {
      const auto& base = static_cast<const sql::BaseTableRef&>(ref);
      TDP_ASSIGN_OR_RETURN(const BaselineTable* table,
                           db_.GetTable(base.table_name));
      Relation rel;
      rel.scope.names = table->column_names;
      rel.scope.qualifiers.assign(
          table->column_names.size(),
          ref.alias.empty() ? base.table_name : ref.alias);
      rel.rows = table->rows;
      return rel;
    }
    case TableRefKind::kSubquery: {
      const auto& sub = static_cast<const sql::SubqueryRef&>(ref);
      TDP_ASSIGN_OR_RETURN(BaselineTable table, Execute(*sub.subquery));
      Relation rel;
      rel.scope.names = table.column_names;
      rel.scope.qualifiers.assign(table.column_names.size(), ref.alias);
      rel.rows = std::move(table.rows);
      return rel;
    }
    case TableRefKind::kJoin: {
      const auto& join = static_cast<const sql::JoinRef&>(ref);
      if (join.join_type != sql::JoinType::kInner) {
        return Status::Unimplemented("only INNER JOIN in BaselineDB");
      }
      TDP_ASSIGN_OR_RETURN(Relation left, ExecuteFrom(*join.left));
      TDP_ASSIGN_OR_RETURN(Relation right, ExecuteFrom(*join.right));
      Relation out;
      out.scope.names = left.scope.names;
      out.scope.qualifiers = left.scope.qualifiers;
      out.scope.names.insert(out.scope.names.end(), right.scope.names.begin(),
                             right.scope.names.end());
      out.scope.qualifiers.insert(out.scope.qualifiers.end(),
                                  right.scope.qualifiers.begin(),
                                  right.scope.qualifiers.end());
      // Nested-loop join with the ON predicate (interpreted engine).
      for (const auto& lrow : left.rows) {
        for (const auto& rrow : right.rows) {
          std::vector<Value> combined = lrow;
          combined.insert(combined.end(), rrow.begin(), rrow.end());
          TDP_ASSIGN_OR_RETURN(Value keep,
                               Eval(*join.condition, out.scope, combined));
          if (std::get<bool>(keep)) out.rows.push_back(std::move(combined));
        }
      }
      return out;
    }
    case TableRefKind::kTableFunction:
      return Status::Unimplemented(
          "BaselineDB has no table functions (by design)");
  }
  return Status::Internal("bad table ref");
}

StatusOr<BaselineTable> Executor::Execute(const SelectStatement& stmt) {
  Relation input;
  if (stmt.from) {
    TDP_ASSIGN_OR_RETURN(input, ExecuteFrom(*stmt.from));
  } else {
    input.rows.push_back({});  // one empty row for SELECT <exprs>
  }

  // WHERE.
  if (stmt.where) {
    std::vector<std::vector<Value>> kept;
    for (auto& row : input.rows) {
      TDP_ASSIGN_OR_RETURN(Value keep, Eval(*stmt.where, input.scope, row));
      if (std::get<bool>(keep)) kept.push_back(std::move(row));
    }
    input.rows = std::move(kept);
  }

  bool has_aggregates = !stmt.group_by.empty() || stmt.having != nullptr;
  for (const auto& item : stmt.select_list) {
    if (item.expr->kind != ExprKind::kStar && HasAggregate(*item.expr)) {
      has_aggregates = true;
    }
  }

  BaselineTable result;
  std::vector<std::vector<Value>> projected;
  RowScope output_scope;

  if (has_aggregates) {
    // Group rows by the GROUP BY key tuple.
    std::map<std::vector<std::string>, std::vector<size_t>> groups;
    std::vector<std::vector<Value>> group_keys;
    for (size_t r = 0; r < input.rows.size(); ++r) {
      std::vector<std::string> key;
      std::vector<Value> key_values;
      for (const auto& g : stmt.group_by) {
        TDP_ASSIGN_OR_RETURN(Value v, Eval(*g, input.scope, input.rows[r]));
        key.push_back(ValueToString(v) + "|" +
                      std::to_string(v.index()));
        key_values.push_back(std::move(v));
      }
      auto [it, inserted] = groups.emplace(key, std::vector<size_t>{});
      it->second.push_back(r);
      if (inserted) group_keys.push_back(std::move(key_values));
    }
    // Rebuild group_keys aligned with map iteration order.
    std::vector<std::vector<size_t>> group_rows;
    std::vector<std::vector<Value>> ordered_keys;
    {
      size_t gi = 0;
      for (auto& [key, rows_idx] : groups) {
        (void)key;
        group_rows.push_back(rows_idx);
        ++gi;
      }
      // Recompute key values per group from a representative row.
      for (const auto& rows_idx : group_rows) {
        std::vector<Value> key_values;
        for (const auto& g : stmt.group_by) {
          TDP_ASSIGN_OR_RETURN(
              Value v, Eval(*g, input.scope, input.rows[rows_idx[0]]));
          key_values.push_back(std::move(v));
        }
        ordered_keys.push_back(std::move(key_values));
      }
    }
    if (stmt.group_by.empty()) {
      // Global aggregate: one group with all rows.
      group_rows.clear();
      ordered_keys.clear();
      std::vector<size_t> all;
      for (size_t r = 0; r < input.rows.size(); ++r) all.push_back(r);
      group_rows.push_back(std::move(all));
      ordered_keys.push_back({});
    }

    // Aggregate definitions from SELECT + HAVING.
    std::vector<const FunctionCallExpr*> agg_calls;
    for (const auto& item : stmt.select_list) {
      if (item.expr->kind != ExprKind::kStar) {
        CollectAggregates(*item.expr, agg_calls);
      }
    }
    if (stmt.having) CollectAggregates(*stmt.having, agg_calls);
    if (!stmt.order_by.empty()) {
      for (const auto& o : stmt.order_by) CollectAggregates(*o.expr, agg_calls);
    }

    // Post-aggregation scope: group expr strings + aggregate strings.
    RowScope group_scope;
    for (const auto& g : stmt.group_by) {
      group_scope.names.push_back(g->ToString());
      group_scope.qualifiers.emplace_back();
    }
    for (const auto* agg : agg_calls) {
      group_scope.names.push_back(agg->ToString());
      group_scope.qualifiers.emplace_back();
    }

    // Compute each group's row: keys ++ aggregate values.
    std::vector<std::vector<Value>> group_table;
    for (size_t g = 0; g < group_rows.size(); ++g) {
      std::vector<Value> grow = ordered_keys[g];
      for (const auto* agg : agg_calls) {
        double acc = 0;
        bool has = false;
        int64_t count = 0;
        std::set<std::string> distinct_seen;
        for (size_t r : group_rows[g]) {
          Value v(static_cast<int64_t>(0));
          if (!agg->is_star_arg) {
            TDP_ASSIGN_OR_RETURN(
                v, Eval(*agg->args[0], input.scope, input.rows[r]));
            if (agg->distinct &&
                !distinct_seen
                     .insert(ValueToString(v) + "|" +
                             std::to_string(v.index()))
                     .second) {
              continue;
            }
          }
          ++count;
          if (agg->function_name == "sum" || agg->function_name == "avg") {
            acc += AsDouble(v);
          } else if (agg->function_name == "min") {
            acc = has ? std::min(acc, AsDouble(v)) : AsDouble(v);
          } else if (agg->function_name == "max") {
            acc = has ? std::max(acc, AsDouble(v)) : AsDouble(v);
          }
          has = true;
        }
        if (agg->function_name == "count") {
          grow.emplace_back(count);
        } else if (agg->function_name == "avg") {
          grow.emplace_back(count > 0 ? acc / count : 0.0);
        } else {
          grow.emplace_back(acc);
        }
      }
      group_table.push_back(std::move(grow));
    }

    // HAVING over group rows.
    if (stmt.having) {
      std::vector<std::vector<Value>> kept;
      for (auto& grow : group_table) {
        TDP_ASSIGN_OR_RETURN(Value keep,
                             EvalPostAgg(*stmt.having, group_scope, grow));
        if (std::get<bool>(keep)) kept.push_back(std::move(grow));
      }
      group_table = std::move(kept);
    }

    // Project SELECT items per group.
    for (const auto& item : stmt.select_list) {
      result.column_names.push_back(
          item.alias.empty() ? item.expr->ToString() : item.alias);
      output_scope.names.push_back(result.column_names.back());
      output_scope.qualifiers.emplace_back();
    }
    for (const auto& grow : group_table) {
      std::vector<Value> out_row;
      for (const auto& item : stmt.select_list) {
        TDP_ASSIGN_OR_RETURN(Value v,
                             EvalPostAgg(*item.expr, group_scope, grow));
        out_row.push_back(std::move(v));
      }
      projected.push_back(std::move(out_row));
    }
    // ORDER BY may reference aggregates: keep group rows for sorting.
    if (!stmt.order_by.empty()) {
      std::vector<size_t> order(projected.size());
      for (size_t i = 0; i < order.size(); ++i) order[i] = i;
      // Precompute sort keys.
      std::vector<std::vector<Value>> keys(projected.size());
      for (size_t i = 0; i < projected.size(); ++i) {
        for (const auto& o : stmt.order_by) {
          // Try output scope first (aliases), then group scope.
          auto v = Eval(*o.expr, output_scope, projected[i]);
          if (!v.ok()) v = EvalPostAgg(*o.expr, group_scope, group_table[i]);
          TDP_RETURN_NOT_OK(v.status());
          keys[i].push_back(std::move(v).value());
        }
      }
      std::stable_sort(order.begin(), order.end(),
                       [&](size_t a, size_t b) {
                         for (size_t k = 0; k < stmt.order_by.size(); ++k) {
                           const bool desc = stmt.order_by[k].descending;
                           if (ValueLess(keys[a][k], keys[b][k])) return !desc;
                           if (ValueLess(keys[b][k], keys[a][k])) return desc;
                         }
                         return false;
                       });
      std::vector<std::vector<Value>> sorted;
      for (size_t i : order) sorted.push_back(std::move(projected[i]));
      projected = std::move(sorted);
    }
  } else {
    // Plain projection.
    for (const auto& item : stmt.select_list) {
      if (item.expr->kind == ExprKind::kStar) {
        for (size_t i = 0; i < input.scope.names.size(); ++i) {
          result.column_names.push_back(input.scope.names[i]);
          output_scope.names.push_back(input.scope.names[i]);
          output_scope.qualifiers.push_back(input.scope.qualifiers[i]);
        }
      } else {
        std::string name = item.alias;
        if (name.empty() && item.expr->kind == ExprKind::kColumnRef) {
          name = static_cast<const ColumnRefExpr&>(*item.expr).column_name;
        }
        if (name.empty()) name = item.expr->ToString();
        result.column_names.push_back(name);
        output_scope.names.push_back(name);
        output_scope.qualifiers.emplace_back();
      }
    }
    for (const auto& row : input.rows) {
      std::vector<Value> out_row;
      for (const auto& item : stmt.select_list) {
        if (item.expr->kind == ExprKind::kStar) {
          for (const Value& v : row) out_row.push_back(v);
        } else {
          TDP_ASSIGN_OR_RETURN(Value v, Eval(*item.expr, input.scope, row));
          out_row.push_back(std::move(v));
        }
      }
      projected.push_back(std::move(out_row));
    }
    if (!stmt.order_by.empty()) {
      std::vector<size_t> order(projected.size());
      for (size_t i = 0; i < order.size(); ++i) order[i] = i;
      std::vector<std::vector<Value>> keys(projected.size());
      for (size_t i = 0; i < projected.size(); ++i) {
        for (const auto& o : stmt.order_by) {
          auto v = Eval(*o.expr, output_scope, projected[i]);
          if (!v.ok()) {
            v = Eval(*o.expr, input.scope, input.rows[i]);
          }
          TDP_RETURN_NOT_OK(v.status());
          keys[i].push_back(std::move(v).value());
        }
      }
      std::stable_sort(order.begin(), order.end(),
                       [&](size_t a, size_t b) {
                         for (size_t k = 0; k < stmt.order_by.size(); ++k) {
                           const bool desc = stmt.order_by[k].descending;
                           if (ValueLess(keys[a][k], keys[b][k])) return !desc;
                           if (ValueLess(keys[b][k], keys[a][k])) return desc;
                         }
                         return false;
                       });
      std::vector<std::vector<Value>> sorted;
      for (size_t i : order) sorted.push_back(std::move(projected[i]));
      projected = std::move(sorted);
    }
  }

  // DISTINCT.
  if (stmt.distinct) {
    std::set<std::string> seen;
    std::vector<std::vector<Value>> unique_rows;
    for (auto& row : projected) {
      std::string key;
      for (const Value& v : row) {
        key += ValueToString(v);
        key += "|";
        key += std::to_string(v.index());
        key += ";";
      }
      if (seen.insert(key).second) unique_rows.push_back(std::move(row));
    }
    projected = std::move(unique_rows);
  }

  // LIMIT / OFFSET.
  const int64_t offset = stmt.offset.value_or(0);
  const int64_t limit =
      stmt.limit.value_or(static_cast<int64_t>(projected.size()));
  std::vector<std::vector<Value>> final_rows;
  for (int64_t i = offset;
       i < static_cast<int64_t>(projected.size()) && i < offset + limit;
       ++i) {
    final_rows.push_back(std::move(projected[static_cast<size_t>(i)]));
  }
  result.rows = std::move(final_rows);
  return result;
}

StatusOr<Value> Executor::EvalPostAgg(const Expr& e,
                                      const RowScope& group_scope,
                                      const std::vector<Value>& group_row) const {
  // Group-expr or aggregate text match -> direct lookup.
  const std::string repr = e.ToString();
  for (size_t i = 0; i < group_scope.names.size(); ++i) {
    if (EqualsIgnoreCase(group_scope.names[i], repr)) return group_row[i];
  }
  switch (e.kind) {
    case ExprKind::kLiteral:
      return Eval(e, group_scope, group_row);
    case ExprKind::kBinary: {
      const auto& b = static_cast<const BinaryExpr&>(e);
      TDP_ASSIGN_OR_RETURN(Value lhs, EvalPostAgg(*b.left, group_scope,
                                                  group_row));
      TDP_ASSIGN_OR_RETURN(Value rhs, EvalPostAgg(*b.right, group_scope,
                                                  group_row));
      // Reuse the scalar machinery via a tiny synthetic evaluation: build
      // literals is overkill — duplicate the op switch instead.
      const bool both_int = std::holds_alternative<int64_t>(lhs) &&
                            std::holds_alternative<int64_t>(rhs);
      switch (b.op) {
        case BinaryOp::kAnd:
          return Value(std::get<bool>(lhs) && std::get<bool>(rhs));
        case BinaryOp::kOr:
          return Value(std::get<bool>(lhs) || std::get<bool>(rhs));
        case BinaryOp::kEq:
          return Value(ValueEquals(lhs, rhs));
        case BinaryOp::kNe:
          return Value(!ValueEquals(lhs, rhs));
        case BinaryOp::kLt:
          return Value(ValueLess(lhs, rhs));
        case BinaryOp::kGe:
          return Value(!ValueLess(lhs, rhs));
        case BinaryOp::kGt:
          return Value(ValueLess(rhs, lhs));
        case BinaryOp::kLe:
          return Value(!ValueLess(rhs, lhs));
        case BinaryOp::kAdd:
          return both_int ? Value(std::get<int64_t>(lhs) +
                                  std::get<int64_t>(rhs))
                          : Value(AsDouble(lhs) + AsDouble(rhs));
        case BinaryOp::kSub:
          return both_int ? Value(std::get<int64_t>(lhs) -
                                  std::get<int64_t>(rhs))
                          : Value(AsDouble(lhs) - AsDouble(rhs));
        case BinaryOp::kMul:
          return both_int ? Value(std::get<int64_t>(lhs) *
                                  std::get<int64_t>(rhs))
                          : Value(AsDouble(lhs) * AsDouble(rhs));
        case BinaryOp::kDiv:
          if (AsDouble(rhs) == 0) {
            return Status::ExecutionError("division by zero");
          }
          return Value(AsDouble(lhs) / AsDouble(rhs));
        case BinaryOp::kMod:
          return Value(std::get<int64_t>(lhs) % std::get<int64_t>(rhs));
      }
      return Status::Internal("bad op");
    }
    case ExprKind::kUnary: {
      const auto& u = static_cast<const UnaryExpr&>(e);
      TDP_ASSIGN_OR_RETURN(Value v,
                           EvalPostAgg(*u.operand, group_scope, group_row));
      if (u.op == UnaryOp::kNot) return Value(!std::get<bool>(v));
      if (std::holds_alternative<int64_t>(v)) {
        return Value(-std::get<int64_t>(v));
      }
      return Value(-AsDouble(v));
    }
    default:
      return Status::BindError(
          "expression must appear in GROUP BY or an aggregate: " + repr);
  }
}

}  // namespace

Status BaselineDb::RegisterTable(const std::string& name,
                                 BaselineTable table) {
  if (name.empty()) return Status::InvalidArgument("empty table name");
  for (const auto& row : table.rows) {
    if (row.size() != table.column_names.size()) {
      return Status::InvalidArgument("ragged rows in baseline table");
    }
  }
  tables_[ToLower(name)] = std::move(table);
  return Status::OK();
}

StatusOr<const BaselineTable*> BaselineDb::GetTable(
    const std::string& name) const {
  const auto it = tables_.find(ToLower(name));
  if (it == tables_.end()) return Status::NotFound("table not found: " + name);
  return &it->second;
}

StatusOr<BaselineTable> BaselineDb::Sql(const std::string& query) const {
  TDP_ASSIGN_OR_RETURN(auto stmt, sql::Parse(query));
  Executor executor(*this);
  return executor.Execute(*stmt);
}

}  // namespace baseline
}  // namespace tdp
