#ifndef TDP_BASELINE_BASELINE_DB_H_
#define TDP_BASELINE_BASELINE_DB_H_

#include <map>
#include <memory>
#include <string>
#include <variant>
#include <vector>

#include "src/common/statusor.h"
#include "src/sql/ast.h"

namespace tdp {
namespace baseline {

/// A cell value in the baseline engine (no tensors — scalar relational
/// data only, like the extracted OCR tables it exists to serve).
using Value = std::variant<int64_t, double, std::string, bool>;

bool ValueEquals(const Value& a, const Value& b);
bool ValueLess(const Value& a, const Value& b);
std::string ValueToString(const Value& v);

struct BaselineTable {
  std::vector<std::string> column_names;
  std::vector<std::vector<Value>> rows;  // row-major
};

/// BaselineDB: a deliberately conventional, interpreted, row-at-a-time
/// analytical SQL engine — the stand-in for DuckDB in Fig. 3 (left) and
/// the independent oracle for differential-testing TDP's tensor query
/// processor. It shares TDP's SQL parser but nothing below it: evaluation
/// walks the AST per row over std::variant values.
///
/// Supported: SELECT (exprs, aliases, *), FROM table / subquery / INNER
/// JOIN, WHERE, GROUP BY + COUNT/SUM/AVG/MIN/MAX (+ DISTINCT), HAVING,
/// ORDER BY, LIMIT/OFFSET, DISTINCT, CASE, BETWEEN, IN. No UDFs/TVFs —
/// by design, ML stays outside this engine (that is the paper's point).
class BaselineDb {
 public:
  Status RegisterTable(const std::string& name, BaselineTable table);

  StatusOr<BaselineTable> Sql(const std::string& query) const;

  StatusOr<const BaselineTable*> GetTable(const std::string& name) const;

 private:
  std::map<std::string, BaselineTable> tables_;  // lowercased keys
};

}  // namespace baseline
}  // namespace tdp

#endif  // TDP_BASELINE_BASELINE_DB_H_
