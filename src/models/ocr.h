#ifndef TDP_MODELS_OCR_H_
#define TDP_MODELS_OCR_H_

#include <memory>

#include "src/common/statusor.h"
#include "src/tensor/tensor.h"
#include "src/udf/registry.h"

namespace tdp {
namespace models {

/// Table-extraction pipeline for document images (the paper's
/// `extract_table` UDF, §5.2): (1) locate the table via ink-density
/// projections, (2) segment the known grid layout into digit cells,
/// (3) recognize each glyph by normalized cross-correlation against digit
/// templates, (4) assemble a plain numeric tensor. Steps (1) and (3) do
/// real image work per document — extraction dominates end-to-end cost,
/// which is the property Fig. 3 (left) measures.
class TableOcr {
 public:
  TableOcr();

  /// Extracts the [kDocRows, kDocCols] value matrix from one document
  /// image [1, H, W] (or [H, W]).
  StatusOr<Tensor> ExtractTable(const Tensor& image) const;

  /// Recognizes a single 12x12 glyph; returns the digit 0-9.
  int RecognizeGlyph(const float* tile, int64_t row_stride) const;

 private:
  Tensor templates_;        // [10, 12, 12]
  Tensor template_norms_;   // [10] L2 norms
};

/// Registers `extract_table(doc_subquery_or_table)` as a TVF producing the
/// four Iris-style measurement columns, kDocRows rows per input document.
Status RegisterExtractTableUdf(udf::FunctionRegistry& registry,
                               std::shared_ptr<const TableOcr> ocr);

}  // namespace models
}  // namespace tdp

#endif  // TDP_MODELS_OCR_H_
