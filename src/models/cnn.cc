#include "src/models/cnn.h"

#include "src/tensor/ops.h"

namespace tdp {
namespace models {

using nn::Conv2dLayer;
using nn::FlattenLayer;
using nn::Linear;
using nn::MaxPool2dLayer;
using nn::Module;
using nn::ReluLayer;
using nn::Sequential;

std::shared_ptr<Module> MakeTileClassifier(int64_t num_classes, Rng& rng,
                                           Device device) {
  std::vector<std::shared_ptr<Module>> layers;
  layers.push_back(
      std::make_shared<Conv2dLayer>(1, 8, 3, 1, 1, rng, true, device));
  layers.push_back(std::make_shared<ReluLayer>());
  layers.push_back(std::make_shared<MaxPool2dLayer>(2, 2));  // 12 -> 6
  layers.push_back(
      std::make_shared<Conv2dLayer>(8, 16, 3, 1, 1, rng, true, device));
  layers.push_back(std::make_shared<ReluLayer>());
  layers.push_back(std::make_shared<MaxPool2dLayer>(2, 2));  // 6 -> 3
  layers.push_back(std::make_shared<FlattenLayer>());        // 16*3*3 = 144
  layers.push_back(std::make_shared<Linear>(144, 64, rng, true, device));
  layers.push_back(std::make_shared<ReluLayer>());
  layers.push_back(
      std::make_shared<Linear>(64, num_classes, rng, true, device));
  return std::make_shared<Sequential>(std::move(layers));
}

std::shared_ptr<Module> MakeCnnSmallRegressor(Rng& rng, Device device) {
  std::vector<std::shared_ptr<Module>> layers;
  layers.push_back(
      std::make_shared<Conv2dLayer>(1, 8, 3, 1, 1, rng, true, device));
  layers.push_back(std::make_shared<ReluLayer>());
  layers.push_back(std::make_shared<MaxPool2dLayer>(2, 2));  // 36 -> 18
  layers.push_back(
      std::make_shared<Conv2dLayer>(8, 16, 3, 1, 1, rng, true, device));
  layers.push_back(std::make_shared<ReluLayer>());
  layers.push_back(std::make_shared<MaxPool2dLayer>(2, 2));  // 18 -> 9
  layers.push_back(
      std::make_shared<Conv2dLayer>(16, 32, 3, 1, 1, rng, true, device));
  layers.push_back(std::make_shared<ReluLayer>());
  layers.push_back(std::make_shared<MaxPool2dLayer>(3, 3));  // 9 -> 3
  layers.push_back(std::make_shared<FlattenLayer>());        // 32*9 = 288
  layers.push_back(std::make_shared<Linear>(288, 128, rng, true, device));
  layers.push_back(std::make_shared<ReluLayer>());
  layers.push_back(std::make_shared<Linear>(128, 20, rng, true, device));
  return std::make_shared<Sequential>(std::move(layers));
}

ResidualBlock::ResidualBlock(int64_t channels, Rng& rng, Device device)
    : Module("residual_block") {
  conv1_ = std::make_shared<Conv2dLayer>(channels, channels, 3, 1, 1, rng,
                                         true, device);
  conv2_ = std::make_shared<Conv2dLayer>(channels, channels, 3, 1, 1, rng,
                                         true, device);
  RegisterModule("conv1", conv1_);
  RegisterModule("conv2", conv2_);
}

Tensor ResidualBlock::Forward(const Tensor& input) {
  Tensor h = Relu(conv1_->Forward(input));
  h = conv2_->Forward(h);
  return Relu(Add(h, input));
}

std::shared_ptr<Module> MakeMiniResNetRegressor(Rng& rng, Device device) {
  std::vector<std::shared_ptr<Module>> layers;
  layers.push_back(
      std::make_shared<Conv2dLayer>(1, 16, 3, 1, 1, rng, true, device));
  layers.push_back(std::make_shared<ReluLayer>());
  layers.push_back(std::make_shared<MaxPool2dLayer>(2, 2));  // 36 -> 18
  layers.push_back(std::make_shared<ResidualBlock>(16, rng, device));
  layers.push_back(std::make_shared<MaxPool2dLayer>(2, 2));  // 18 -> 9
  layers.push_back(std::make_shared<ResidualBlock>(16, rng, device));
  layers.push_back(std::make_shared<MaxPool2dLayer>(3, 3));  // 9 -> 3
  layers.push_back(std::make_shared<ResidualBlock>(16, rng, device));
  layers.push_back(std::make_shared<FlattenLayer>());        // 16*9 = 144
  layers.push_back(std::make_shared<Linear>(144, 128, rng, true, device));
  layers.push_back(std::make_shared<ReluLayer>());
  layers.push_back(std::make_shared<Linear>(128, 20, rng, true, device));
  return std::make_shared<Sequential>(std::move(layers));
}

}  // namespace models
}  // namespace tdp
