#include "src/models/ocr.h"

#include <cmath>
#include <vector>

#include "src/data/digits.h"
#include "src/data/documents.h"
#include "src/exec/chunk.h"

namespace tdp {
namespace models {

using data::kCellHeight;
using data::kCellWidth;
using data::kDocCols;
using data::kDocColumnNames;
using data::kDocRows;
using data::kTileSize;

TableOcr::TableOcr() {
  templates_ = Tensor::Zeros({10, kTileSize, kTileSize});
  template_norms_ = Tensor::Zeros({10});
  float* tp = templates_.data<float>();
  float* np = template_norms_.data<float>();
  for (int d = 0; d < 10; ++d) {
    const Tensor glyph = data::RenderDigitTemplate(d);
    const float* gp = glyph.data<float>();
    double norm_sq = 0;
    for (int64_t i = 0; i < kTileSize * kTileSize; ++i) {
      tp[d * kTileSize * kTileSize + i] = gp[i];
      norm_sq += gp[i] * gp[i];
    }
    np[d] = static_cast<float>(std::sqrt(norm_sq) + 1e-9);
  }
}

int TableOcr::RecognizeGlyph(const float* tile, int64_t row_stride) const {
  const float* tp = templates_.data<float>();
  const float* np = template_norms_.data<float>();
  double tile_norm_sq = 0;
  for (int64_t y = 0; y < kTileSize; ++y) {
    for (int64_t x = 0; x < kTileSize; ++x) {
      const double v = tile[y * row_stride + x];
      tile_norm_sq += v * v;
    }
  }
  const double tile_norm = std::sqrt(tile_norm_sq) + 1e-9;
  int best = 0;
  double best_score = -1;
  for (int d = 0; d < 10; ++d) {
    const float* glyph = tp + d * kTileSize * kTileSize;
    double dot = 0;
    for (int64_t y = 0; y < kTileSize; ++y) {
      for (int64_t x = 0; x < kTileSize; ++x) {
        dot += tile[y * row_stride + x] * glyph[y * kTileSize + x];
      }
    }
    const double score = dot / (tile_norm * np[d]);
    if (score > best_score) {
      best_score = score;
      best = d;
    }
  }
  return best;
}

StatusOr<Tensor> TableOcr::ExtractTable(const Tensor& image) const {
  Tensor img2d = image;
  if (img2d.dim() == 3) {
    if (img2d.size(0) != 1) {
      return Status::TypeError("document images must be single-channel");
    }
    img2d = Squeeze(img2d, 0);
  }
  if (img2d.dim() != 2) {
    return Status::TypeError("ExtractTable expects [1, H, W] or [H, W]");
  }
  const Tensor contiguous = img2d.Detach().Contiguous();
  const int64_t height = contiguous.size(0);
  const int64_t width = contiguous.size(1);
  const float* img = contiguous.data<float>();

  // --- Step 1: table detection — exhaustive template-alignment sweep. ---
  // Every feasible table origin is scored by correlating the first column
  // of cells against all digit templates (real form-OCR detection work;
  // this sweep is what makes per-image conversion expensive, the property
  // Fig. 3 (left) measures).
  const int64_t max_top = height - kDocRows * kCellHeight;
  const int64_t max_left = width - kDocCols * kCellWidth;
  if (max_top < 0 || max_left < 0) {
    return Status::ExecutionError("image smaller than the table layout");
  }
  const float* np = template_norms_.data<float>();
  const float* tp = templates_.data<float>();
  double best_score = -1;
  int64_t top = -1, left = -1;
  for (int64_t ty = 0; ty <= max_top; ++ty) {
    for (int64_t tx = 0; tx <= max_left; ++tx) {
      double origin_score = 0;
      for (int64_t rc = 0; rc < kDocRows * kDocCols; ++rc) {
        const int64_t r = rc / kDocCols;
        const int64_t c = rc % kDocCols;
        // Score both glyph positions of the cell; this disambiguates
        // origins shifted by exactly one glyph width.
        for (int64_t g = 0; g < 2; ++g) {
          const float* cell = img + (ty + r * kCellHeight) * width +
                              (tx + c * kCellWidth + g * kTileSize);
          double tile_norm_sq = 1e-9;
          for (int64_t y = 0; y < kTileSize; ++y) {
            for (int64_t x = 0; x < kTileSize; ++x) {
              tile_norm_sq += cell[y * width + x] * cell[y * width + x];
            }
          }
          double best_cell = -1;
          for (int d = 0; d < 10; ++d) {
            double dot = 0;
            const float* glyph = tp + d * kTileSize * kTileSize;
            for (int64_t y = 0; y < kTileSize; ++y) {
              for (int64_t x = 0; x < kTileSize; ++x) {
                dot += cell[y * width + x] * glyph[y * kTileSize + x];
              }
            }
            best_cell = std::max(best_cell,
                                 dot / (std::sqrt(tile_norm_sq) * np[d]));
          }
          origin_score += best_cell;
        }
      }
      if (origin_score > best_score) {
        best_score = origin_score;
        top = ty;
        left = tx;
      }
    }
  }
  // An aligned table correlates near 1.0 per cell; a blank or non-table
  // image scores far lower.
  if (top < 0 || best_score < 0.5 * 2 * kDocRows * kDocCols) {
    return Status::ExecutionError("no table found in document image");
  }

  // --- Steps 2+3: segment cells and recognize glyph pairs. ---
  Tensor values = Tensor::Zeros({kDocRows, kDocCols});
  float* vp = values.data<float>();
  for (int64_t r = 0; r < kDocRows; ++r) {
    for (int64_t c = 0; c < kDocCols; ++c) {
      const float* cell =
          img + (top + r * kCellHeight) * width + (left + c * kCellWidth);
      const int d1 = RecognizeGlyph(cell, width);
      const int d2 = RecognizeGlyph(cell + kTileSize, width);
      vp[r * kDocCols + c] = static_cast<float>(d1 * 10 + d2) / 10.0f;
    }
  }
  return values;
}

Status RegisterExtractTableUdf(udf::FunctionRegistry& registry,
                               std::shared_ptr<const TableOcr> ocr) {
  udf::TableFunction fn;
  fn.name = "extract_table";
  for (const char* name : kDocColumnNames) {
    fn.output_schema.push_back({name, udf::DeclaredType::kFloat});
  }
  fn.min_args = 0;
  fn.max_args = 0;
  // Row-local by construction: the body is a per-document loop (detect,
  // segment, recognize one image at a time), so document batches stream
  // through ModelEval bit-identically to the whole-relation call.
  fn.batchable = true;
  fn.preferred_batch_rows = 64;
  fn.fn = [ocr](const exec::Chunk& input,
                const std::vector<exec::ScalarValue>& args,
                Device device) -> StatusOr<exec::Chunk> {
    (void)args;
    // Find the image column (any rank >= 3 tensor column).
    int64_t image_col = -1;
    for (int64_t i = 0; i < input.num_columns(); ++i) {
      if (input.columns[static_cast<size_t>(i)].IsTensorColumn()) {
        image_col = i;
        break;
      }
    }
    if (image_col < 0) {
      return Status::TypeError("extract_table: no image column in input");
    }
    const Tensor images = input.columns[static_cast<size_t>(image_col)].data();
    const int64_t docs = images.size(0);
    std::vector<Tensor> extracted;
    extracted.reserve(static_cast<size_t>(docs));
    for (int64_t d = 0; d < docs; ++d) {
      TDP_ASSIGN_OR_RETURN(Tensor values,
                           ocr->ExtractTable(Squeeze(
                               Slice(images, 0, d, 1), 0)));
      extracted.push_back(std::move(values));
    }
    Tensor all =
        docs > 0 ? Cat(extracted, 0)
                 : Tensor::Zeros({0, kDocCols});
    exec::Chunk out;
    for (int64_t c = 0; c < kDocCols; ++c) {
      out.names.emplace_back(kDocColumnNames[static_cast<size_t>(c)]);
      out.columns.push_back(Column::Plain(
          Slice(all, 1, c, 1).Squeeze(1).Contiguous().To(device)));
    }
    return out;
  };
  return registry.RegisterTable(std::move(fn));
}

}  // namespace models
}  // namespace tdp
