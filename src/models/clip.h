#ifndef TDP_MODELS_CLIP_H_
#define TDP_MODELS_CLIP_H_

#include <map>
#include <memory>
#include <string>

#include "src/common/statusor.h"
#include "src/tensor/tensor.h"
#include "src/udf/registry.h"

namespace tdp {
namespace models {

/// SimCLIP: a deterministic joint image/text embedding model standing in
/// for OpenAI CLIP (paper §5.1). See DESIGN.md §4 for the substitution
/// argument: the multimodal queries only rely on matching image/text
/// concept pairs scoring high and non-matching pairs scoring low in a
/// shared embedding space, which SimCLIP provides:
///
///  - the image encoder pools patch statistics and pushes them through a
///    fixed random two-layer projection to a 64-d unit sphere (all tensor
///    ops — so it accelerates on Device::kAccel like any other kernel);
///  - the text encoder maps a natural-language query to the nearest known
///    concept and returns that concept's prototype embedding (the
///    normalized mean embedding of freshly sampled concept images).
///
/// Scores are cosine similarities in [-1, 1]; matching concepts land
/// above ~0.9 and non-matching below ~0.7, so the paper's 0.8 threshold
/// works unchanged.
class SimClip {
 public:
  static constexpr int64_t kEmbeddingDim = 64;

  explicit SimClip(uint64_t seed = 42);

  /// Embeds a batch of [n, 3, 32, 32] images -> [n, 64], rows unit-norm.
  /// Runs on the device of `images`.
  Tensor EncodeImages(const Tensor& images) const;

  /// Embeds a text query -> [64]; NotFound for unknown concepts.
  StatusOr<Tensor> EncodeText(const std::string& query) const;

  /// Cosine similarity between `query` and each image -> [n] float32.
  StatusOr<Tensor> Similarity(const std::string& query,
                              const Tensor& images) const;

  /// Concept names the text encoder understands.
  std::vector<std::string> Vocabulary() const;

 private:
  /// Raw pooled-patch feature vector per image, [n, feature_dim].
  Tensor ComputeFeatures(const Tensor& images) const;

  Tensor w1_, b1_, w2_;   // fixed random projection (not trainable)
  Tensor feature_mean_;   // centering statistics (prevents cone collapse)
  Tensor feature_scale_;  // per-feature inverse stddev
  std::map<std::string, Tensor> text_embeddings_;
};

/// Registers the paper's `image_text_similarity(query, images)` scalar UDF
/// (Listing 7) backed by `clip`.
Status RegisterImageTextSimilarityUdf(udf::FunctionRegistry& registry,
                                      std::shared_ptr<const SimClip> clip);

}  // namespace models
}  // namespace tdp

#endif  // TDP_MODELS_CLIP_H_
