#include "src/models/clip.h"

#include <algorithm>
#include <cmath>
#include <vector>

#include "src/common/string_util.h"
#include "src/data/attachments.h"
#include "src/tensor/ops.h"

namespace tdp {
namespace models {
namespace {

using data::Concept;

constexpr int64_t kPatch = 2;     // 2x2 average pooling
constexpr int64_t kPooled = 16;   // 32 / 2
constexpr int64_t kFeatureDim =
    data::kImageChannels * kPooled * kPooled + 2 * data::kImageChannels;
constexpr int64_t kHiddenDim = 512;
constexpr int64_t kPrototypesPerConcept = 16;

// Concept groups for coarse queries.
const std::vector<Concept> kPhotoConcepts = {
    Concept::kDog, Concept::kCat, Concept::kBeach, Concept::kMountain};
const std::vector<Concept> kReceiptConcepts = {Concept::kStoreReceipt,
                                               Concept::kKfcReceipt};
const std::vector<Concept> kLogoConcepts = {
    Concept::kKfcLogo, Concept::kAcmeLogo, Concept::kGlobexLogo};

}  // namespace

SimClip::SimClip(uint64_t seed) {
  Rng rng(seed);
  w1_ = RandNormal({kFeatureDim, kHiddenDim}, 0.0,
                   1.0 / std::sqrt(static_cast<double>(kFeatureDim)), rng);
  b1_ = RandNormal({kHiddenDim}, 0.0, 0.1, rng);
  w2_ = RandNormal({kHiddenDim, kEmbeddingDim}, 0.0,
                   1.0 / std::sqrt(static_cast<double>(kHiddenDim)), rng);

  // Feature whitening statistics over a sample of every concept: without
  // centering, all-positive pixel statistics collapse every embedding into
  // a narrow cone and concepts stop being separable.
  {
    feature_mean_ = Tensor::Zeros({1, kFeatureDim});
    feature_scale_ = Tensor::Ones({1, kFeatureDim});
    std::vector<Tensor> sample;
    Rng stats_rng = rng.Split();
    for (int64_t ci = 0; ci < data::kNumConcepts; ++ci) {
      for (int i = 0; i < 8; ++i) {
        sample.push_back(Unsqueeze(
            data::RenderConceptImage(static_cast<Concept>(ci), stats_rng),
            0));
      }
    }
    const Tensor features = ComputeFeatures(Cat(sample, 0));
    feature_mean_ = Mean(features, 0, /*keepdim=*/true);
    const Tensor centered = Sub(features, feature_mean_);
    const Tensor var = Mean(Mul(centered, centered), 0, /*keepdim=*/true);
    feature_scale_ = RDivScalar(1.0, Sqrt(AddScalar(var, 1e-4)));
  }

  // Build prototype (text-side) embeddings from freshly sampled concept
  // images — this is the "training" that aligns the two modalities.
  auto prototype = [&](const std::vector<Concept>& concepts) {
    std::vector<Tensor> images;
    Rng proto_rng = rng.Split();
    for (Concept c : concepts) {
      for (int64_t i = 0; i < kPrototypesPerConcept; ++i) {
        images.push_back(
            Unsqueeze(data::RenderConceptImage(c, proto_rng), 0));
      }
    }
    const Tensor batch = Cat(images, 0);
    const Tensor embeddings = EncodeImages(batch);
    Tensor centroid = Mean(embeddings, 0, /*keepdim=*/false);
    return L2Normalize(Unsqueeze(centroid, 0), 1).Squeeze(0).Contiguous();
  };

  text_embeddings_["dog"] = prototype({Concept::kDog});
  text_embeddings_["cat"] = prototype({Concept::kCat});
  text_embeddings_["beach"] = prototype({Concept::kBeach});
  text_embeddings_["mountain"] = prototype({Concept::kMountain});
  text_embeddings_["photo"] = prototype(kPhotoConcepts);
  text_embeddings_["photograph"] = text_embeddings_["photo"];
  text_embeddings_["receipt"] = prototype(kReceiptConcepts);
  text_embeddings_["kfc receipt"] = prototype({Concept::kKfcReceipt});
  text_embeddings_["store receipt"] = prototype({Concept::kStoreReceipt});
  text_embeddings_["logo"] = prototype(kLogoConcepts);
  text_embeddings_["company logo"] = text_embeddings_["logo"];
  text_embeddings_["kfc logo"] = prototype({Concept::kKfcLogo});
  text_embeddings_["acme logo"] = prototype({Concept::kAcmeLogo});
  text_embeddings_["globex logo"] = prototype({Concept::kGlobexLogo});
}

Tensor SimClip::ComputeFeatures(const Tensor& images) const {
  TDP_CHECK_EQ(images.dim(), 4);
  TDP_CHECK_EQ(images.size(1), data::kImageChannels);
  const int64_t n = images.size(0);

  // Patch statistics: 4x4 average pooling -> [n, 3*8*8].
  const Tensor pooled = AvgPool2d(images, kPatch, kPatch);
  const Tensor patches =
      Reshape(pooled, {n, data::kImageChannels * kPooled * kPooled});

  // Channel means and variances -> [n, 6].
  const Tensor flat =
      Reshape(images, {n, data::kImageChannels,
                       data::kImageSize * data::kImageSize});
  const Tensor channel_mean = Mean(flat, 2, /*keepdim=*/false);
  const Tensor centered = Sub(flat, Mean(flat, 2, /*keepdim=*/true));
  const Tensor channel_var = Mean(Mul(centered, centered), 2, false);

  return Cat({patches, channel_mean, channel_var}, 1);
}

Tensor SimClip::EncodeImages(const Tensor& images) const {
  const Device device = images.device();
  const Tensor features = ComputeFeatures(images);
  const Tensor whitened = Mul(Sub(features, feature_mean_.To(device)),
                              feature_scale_.To(device));
  const Tensor h =
      Tanh(Add(MatMul(whitened, w1_.To(device)), b1_.To(device)));
  const Tensor e = MatMul(h, w2_.To(device));
  return L2Normalize(e, 1);
}

StatusOr<Tensor> SimClip::EncodeText(const std::string& query) const {
  const std::string q = ToLower(query);
  // Longest matching concept phrase wins ("kfc receipt" beats "receipt").
  const std::string* best_key = nullptr;
  for (const auto& [key, unused] : text_embeddings_) {
    if (q.find(key) != std::string::npos) {
      if (best_key == nullptr || key.size() > best_key->size()) {
        best_key = &key;
      }
    }
  }
  if (best_key == nullptr) {
    return Status::NotFound("SimCLIP has no concept matching query: '" +
                            query + "'");
  }
  return text_embeddings_.at(*best_key);
}

StatusOr<Tensor> SimClip::Similarity(const std::string& query,
                                     const Tensor& images) const {
  TDP_ASSIGN_OR_RETURN(Tensor text, EncodeText(query));
  const Tensor image_embeddings = EncodeImages(images);
  // [n, 64] @ [64, 1] -> [n]
  const Tensor scores = MatMul(
      image_embeddings, Unsqueeze(text.To(images.device()), 1));
  return Squeeze(scores, 1).Contiguous();
}

std::vector<std::string> SimClip::Vocabulary() const {
  std::vector<std::string> out;
  for (const auto& [key, unused] : text_embeddings_) out.push_back(key);
  return out;
}

Status RegisterImageTextSimilarityUdf(
    udf::FunctionRegistry& registry, std::shared_ptr<const SimClip> clip) {
  udf::ScalarFunction fn;
  fn.name = "image_text_similarity";
  fn.return_type = udf::DeclaredType::kFloat;
  // Row-local: each image's score depends only on that image and the query
  // string, so micro-batching and cross-query coalescing are exact.
  fn.batchable = true;
  fn.preferred_batch_rows = 128;
  fn.fn = [clip](const std::vector<udf::Argument>& args, int64_t num_rows,
                 Device device) -> StatusOr<Column> {
    if (args.size() != 2 || !args[0].is_scalar ||
        !args[0].scalar.is_string() || args[1].is_scalar) {
      return Status::InvalidArgument(
          "image_text_similarity(query_string, image_column)");
    }
    const Column& images = args[1].column;
    if (!images.IsTensorColumn()) {
      return Status::TypeError(
          "image_text_similarity expects an image tensor column");
    }
    (void)num_rows;
    (void)device;  // kernels follow the column's device
    TDP_ASSIGN_OR_RETURN(
        Tensor scores,
        clip->Similarity(args[0].scalar.string_value(), images.data()));
    return Column::Plain(scores);
  };
  return registry.RegisterScalar(std::move(fn));
}

}  // namespace models
}  // namespace tdp
