#ifndef TDP_MODELS_TVFS_H_
#define TDP_MODELS_TVFS_H_

#include <memory>

#include "src/common/rng.h"
#include "src/common/statusor.h"
#include "src/nn/module.h"
#include "src/udf/registry.h"

namespace tdp {
namespace models {

/// The paper's `parse_mnist_grid` TVF (Listing 4): splits each grid image
/// into 9 tiles (einops rearrange), runs a digit CNN and a size CNN, and
/// returns two Probability-Encoded columns ("Digit": 10 classes, "Size":
/// 2 classes) — one row per tile. The returned modules are the trainable
/// parsers; compiled queries that call the TVF surface their parameters.
struct ParseMnistGridTvf {
  std::shared_ptr<nn::Module> digit_parser;
  std::shared_ptr<nn::Module> size_parser;
};

StatusOr<ParseMnistGridTvf> RegisterParseMnistGridTvf(
    udf::FunctionRegistry& registry, Rng& rng,
    Device device = Device::kAccel);

/// The paper's `classify_incomes` TVF (Listing 9): a linear classifier
/// over census feature rows producing a 2-class PE column "Income".
struct ClassifyIncomesTvf {
  std::shared_ptr<nn::Module> model;
};

StatusOr<ClassifyIncomesTvf> RegisterClassifyIncomesTvf(
    udf::FunctionRegistry& registry, int64_t num_features, Rng& rng,
    Device device = Device::kAccel);

}  // namespace models
}  // namespace tdp

#endif  // TDP_MODELS_TVFS_H_
