#include "src/models/tvfs.h"

#include "src/data/mnist_grid.h"
#include "src/models/cnn.h"
#include "src/nn/layers.h"
#include "src/tensor/ops.h"

namespace tdp {
namespace models {

StatusOr<ParseMnistGridTvf> RegisterParseMnistGridTvf(
    udf::FunctionRegistry& registry, Rng& rng, Device device) {
  ParseMnistGridTvf tvf;
  tvf.digit_parser =
      MakeTileClassifier(data::kNumDigitClasses, rng, device);
  tvf.size_parser = MakeTileClassifier(data::kNumSizeClasses, rng, device);

  udf::TableFunction fn;
  fn.name = "parse_mnist_grid";
  fn.output_schema = {{"Digit", udf::DeclaredType::kProbability},
                      {"Size", udf::DeclaredType::kProbability}};
  fn.modules = {tvf.digit_parser, tvf.size_parser};
  fn.min_args = 0;
  fn.max_args = 0;
  // Row-local: GridToTiles is grid-major (tiles of grid i precede tiles of
  // grid i+1) and the classifier heads score each tile independently, so
  // any batch partition of the grids concatenates to the whole-relation
  // output byte for byte — the TVF streams through ModelEval.
  fn.batchable = true;
  fn.preferred_batch_rows = 128;
  auto digit_parser = tvf.digit_parser;
  auto size_parser = tvf.size_parser;
  fn.fn = [digit_parser, size_parser](
              const exec::Chunk& input,
              const std::vector<exec::ScalarValue>& args,
              Device device) -> StatusOr<exec::Chunk> {
    (void)args;
    (void)device;
    int64_t grid_col = -1;
    for (int64_t i = 0; i < input.num_columns(); ++i) {
      if (input.columns[static_cast<size_t>(i)].IsTensorColumn()) {
        grid_col = i;
        break;
      }
    }
    if (grid_col < 0) {
      return Status::TypeError("parse_mnist_grid: no grid image column");
    }
    const Tensor grids = input.columns[static_cast<size_t>(grid_col)].data();
    if (grids.dim() != 4 || grids.size(2) != data::kGridSize ||
        grids.size(3) != data::kGridSize) {
      return Status::TypeError(
          "parse_mnist_grid expects [n, 1, 36, 36] grids, got " +
          ShapeToString(grids.shape()));
    }
    // einops rearrange: grids -> batched tiles (Listing 4, lines 6-10).
    const Tensor tiles = data::GridToTiles(grids);
    // Classification heads; PE-encode the softmax outputs (line 12).
    const Tensor digit_probs = Softmax(digit_parser->Forward(tiles), 1);
    const Tensor size_probs = Softmax(size_parser->Forward(tiles), 1);
    std::vector<double> digit_domain;
    for (int64_t d = 0; d < data::kNumDigitClasses; ++d) {
      digit_domain.push_back(static_cast<double>(d));
    }
    exec::Chunk out;
    out.names = {"Digit", "Size"};
    out.columns.push_back(Column::Probability(digit_probs, digit_domain));
    out.columns.push_back(Column::Probability(size_probs, {0.0, 1.0}));
    return out;
  };
  TDP_RETURN_NOT_OK(registry.RegisterTable(std::move(fn)));
  return tvf;
}

StatusOr<ClassifyIncomesTvf> RegisterClassifyIncomesTvf(
    udf::FunctionRegistry& registry, int64_t num_features, Rng& rng,
    Device device) {
  ClassifyIncomesTvf tvf;
  tvf.model = std::make_shared<nn::Linear>(num_features, 2, rng,
                                           /*with_bias=*/true, device);

  udf::TableFunction fn;
  fn.name = "classify_incomes";
  fn.output_schema = {{"Income", udf::DeclaredType::kProbability}};
  fn.modules = {tvf.model};
  fn.min_args = 0;
  fn.max_args = 0;
  // Row-local: one linear forward per feature row.
  fn.batchable = true;
  auto model = tvf.model;
  fn.fn = [model, num_features](
              const exec::Chunk& input,
              const std::vector<exec::ScalarValue>& args,
              Device device) -> StatusOr<exec::Chunk> {
    (void)args;
    (void)device;
    int64_t feature_col = -1;
    for (int64_t i = 0; i < input.num_columns(); ++i) {
      const Column& c = input.columns[static_cast<size_t>(i)];
      if (c.encoding() == Encoding::kPlain && c.data().dim() == 2) {
        feature_col = i;
        break;
      }
    }
    if (feature_col < 0) {
      return Status::TypeError(
          "classify_incomes: no [n, features] column in input");
    }
    const Tensor features =
        input.columns[static_cast<size_t>(feature_col)].data();
    if (features.size(1) != num_features) {
      return Status::TypeError("classify_incomes: feature width mismatch");
    }
    const Tensor probs = Softmax(model->Forward(features), 1);
    exec::Chunk out;
    out.names = {"Income"};
    out.columns.push_back(Column::Probability(probs, {0.0, 1.0}));
    return out;
  };
  TDP_RETURN_NOT_OK(registry.RegisterTable(std::move(fn)));
  return tvf;
}

}  // namespace models
}  // namespace tdp
