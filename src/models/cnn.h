#ifndef TDP_MODELS_CNN_H_
#define TDP_MODELS_CNN_H_

#include <memory>

#include "src/common/rng.h"
#include "src/nn/layers.h"

namespace tdp {
namespace models {

/// CNN classifier over 12x12 single-channel digit tiles (the paper's
/// `CNN(num_classes=10)` / `CNN(num_classes=2)` in Listing 4):
///   conv(1->8) relu pool2 -> conv(8->16) relu pool2 -> fc(144->64) relu
///   -> fc(64->classes).
/// Output is logits [n, classes]; compose with Softmax + PE encoding in
/// the TVF.
std::shared_ptr<nn::Module> MakeTileClassifier(int64_t num_classes, Rng& rng,
                                               Device device = Device::kAccel);

/// CNN-Small: the monolithic regression baseline of §5.5 Experiment 1 —
/// one CNN mapping a whole 36x36 grid to the 20 grouped counts (it must
/// learn classification AND the group-by/count logic end to end).
std::shared_ptr<nn::Module> MakeCnnSmallRegressor(
    Rng& rng, Device device = Device::kAccel);

/// MiniResNet: the ResNet-18-role baseline — deeper residual CNN regressor
/// over the grid (scaled down for single-core hosts; see EXPERIMENTS.md).
std::shared_ptr<nn::Module> MakeMiniResNetRegressor(
    Rng& rng, Device device = Device::kAccel);

/// Residual block: x + conv(relu(conv(x))), channel-preserving 3x3.
class ResidualBlock : public nn::Module {
 public:
  ResidualBlock(int64_t channels, Rng& rng, Device device);
  Tensor Forward(const Tensor& input) override;

 private:
  std::shared_ptr<nn::Conv2dLayer> conv1_;
  std::shared_ptr<nn::Conv2dLayer> conv2_;
};

}  // namespace models
}  // namespace tdp

#endif  // TDP_MODELS_CNN_H_
